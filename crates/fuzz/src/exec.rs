//! Differential execution of one fuzz case: replay the ops on several
//! production engines (including a fully-preprocessing arm and a sharing
//! portfolio), certify every answer, cross-check the verdicts.

use std::cell::RefCell;
use std::rc::Rc;

use berkmin::{
    ActivityIndex, Budget, PortfolioConfig, PortfolioEngine, RestartPolicy, SatEngine,
    SimplifyConfig, SolveEvent, SolveStatus, Solver, SolverBuilder, SolverConfig,
};
use berkmin_cnf::{Cnf, Lit};
use berkmin_drat::{check_refutation, DratProof};

use crate::ops::{Case, Op};
use crate::reference;

/// Outcome summary of a clean (discrepancy-free) case execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseReport {
    /// Number of `solve` ops executed.
    pub solves: usize,
    /// Answers whose certification had to be skipped because the reference
    /// solver ran out of nodes. Zero on every case the generator emits.
    pub uncertified: usize,
}

/// Decided-or-not view of a [`SolveStatus`], for cross-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Sat,
    Unsat,
    Unknown,
}

fn verdict(status: &SolveStatus) -> Verdict {
    match status {
        SolveStatus::Sat(_) => Verdict::Sat,
        SolveStatus::Unsat => Verdict::Unsat,
        SolveStatus::Unknown(_) => Verdict::Unknown,
    }
}

/// Lifetime totals accumulated from the observer event stream, checked
/// against the engine's own [`berkmin::Stats`] after every solve. Any
/// divergence means an emission site was skipped or double-fired.
#[derive(Debug, Default)]
struct EventTally {
    solve_starts: u64,
    solve_dones: u64,
    restarts: u64,
    reductions: u64,
    /// Sum of the per-call `SolveDone` conflict deltas.
    conflicts: u64,
    /// Sum of the per-call `SolveDone` decision deltas.
    decisions: u64,
    /// Sum of the per-call `SolveDone` restart deltas.
    restart_deltas: u64,
}

impl EventTally {
    fn record(&mut self, event: &SolveEvent) {
        match event {
            SolveEvent::SolveStart { .. } => self.solve_starts += 1,
            SolveEvent::SolveDone {
                conflicts,
                decisions,
                restarts,
                ..
            } => {
                self.solve_dones += 1;
                self.conflicts += conflicts;
                self.decisions += decisions;
                self.restart_deltas += restarts;
            }
            SolveEvent::Restart { .. } => self.restarts += 1,
            SolveEvent::Reduce { .. } => self.reductions += 1,
            _ => {}
        }
    }

    /// Checks the tallied stream against the engine's lifetime counters.
    fn check(&self, name: &'static str, at: usize, stats: &berkmin::Stats) -> Result<(), String> {
        let fail = |what: &str, event: u64, stat: u64| {
            Err(format!(
                "[{name} op {at}] event stream disagrees with stats: \
                 {what} tallied {event}, stats say {stat}"
            ))
        };
        if self.solve_starts != stats.solve_calls {
            return fail("SolveStart", self.solve_starts, stats.solve_calls);
        }
        if self.solve_dones != stats.solve_calls {
            return fail("SolveDone", self.solve_dones, stats.solve_calls);
        }
        if self.restarts != stats.restarts {
            return fail("Restart", self.restarts, stats.restarts);
        }
        if self.restart_deltas != stats.restarts {
            return fail(
                "SolveDone restart deltas",
                self.restart_deltas,
                stats.restarts,
            );
        }
        if self.reductions != stats.reductions {
            return fail("Reduce", self.reductions, stats.reductions);
        }
        if self.conflicts != stats.conflicts {
            return fail("SolveDone conflict deltas", self.conflicts, stats.conflicts);
        }
        if self.decisions != stats.decisions {
            return fail("SolveDone decision deltas", self.decisions, stats.decisions);
        }
        Ok(())
    }
}

/// One engine under test plus its accumulated proof and event tally.
struct Arm {
    name: &'static str,
    solver: Solver,
    proof: Rc<RefCell<DratProof>>,
    events: Rc<RefCell<EventTally>>,
}

impl Arm {
    fn new(name: &'static str, config: SolverConfig) -> Arm {
        let proof = Rc::new(RefCell::new(DratProof::new()));
        let events = Rc::new(RefCell::new(EventTally::default()));
        let tap = Rc::clone(&events);
        let solver = SolverBuilder::with_config(config.with_paranoid(true))
            .proof(Rc::clone(&proof))
            .on_event(move |e: &SolveEvent| tap.borrow_mut().record(e))
            .build();
        Arm {
            name,
            solver,
            proof,
            events,
        }
    }
}

/// Executes `case`, certifying every answer of every engine.
///
/// `Ok` means every answer was consistent and certified (modulo
/// [`CaseReport::uncertified`] reference-budget skips); `Err` carries a
/// human-readable discrepancy description. Paranoid-audit panics are *not*
/// caught here — use [`run_case_catching`] for that.
pub fn run_case(case: &Case) -> Result<CaseReport, String> {
    // A restart-every-2-conflicts arm with the heap decision index churns
    // clause-DB reduction, garbage collection and heap maintenance far
    // harder than any sane configuration would.
    let mut churn_cfg = SolverConfig::berkmin().with_seed(0xC0FFEE);
    churn_cfg.restart = RestartPolicy::FixedInterval(2);
    churn_cfg.activity_index = ActivityIndex::Heap;
    let mut arms = [
        Arm::new("berkmin", SolverConfig::berkmin().with_seed(0x5EED)),
        Arm::new("chaff", SolverConfig::chaff_like().with_seed(7)),
        Arm::new("churn", churn_cfg),
        // Full preprocessing with inprocessing: subsumption, strengthening
        // and bounded variable elimination re-run before *every* solve. Its
        // SAT models exercise reconstruction (certified against the original
        // accumulated formula below) and its refutations carry elimination
        // additions and deletions through the same DRAT check as the others.
        Arm::new(
            "simplify",
            SolverConfig::berkmin()
                .with_seed(0x51A9)
                .with_simplify(SimplifyConfig::full()),
        ),
    ];
    // Variable elimination forbids re-introducing an eliminated variable,
    // so freeze up front every variable the rest of the case will assume,
    // or add after the first solve — the contract a real incremental user
    // follows for variables they intend to come back to.
    {
        let simplify = arms.last_mut().expect("simplify arm exists");
        let mut seen_solve = false;
        for op in &case.ops {
            match op {
                Op::Solve => seen_solve = true,
                Op::Assume(l) => simplify.solver.freeze(l.var()),
                Op::Add(lits) if seen_solve => {
                    for l in lits {
                        simplify.solver.freeze(l.var());
                    }
                }
                _ => {}
            }
        }
    }
    // The last arm: a deterministic two-worker sharing portfolio. Clause
    // import makes its DRAT stream unsound, so its absolute refutations are
    // certified through the independent DPLL reference instead of a proof.
    let mut portfolio = PortfolioEngine::new(
        PortfolioConfig::new(2)
            .with_share_lbd(Some(4))
            .with_deterministic(true)
            .with_paranoid(true),
    );

    let mut formula: Vec<Vec<Lit>> = Vec::new();
    let mut staged: Vec<Lit> = Vec::new();
    let mut budget: Option<u64> = None;
    // Variables the session has touched *so far* — later ops may introduce
    // more, which a model produced now cannot be expected to cover.
    let mut num_vars = 0usize;
    let mut report = CaseReport::default();

    for (at, op) in case.ops.iter().enumerate() {
        match op {
            Op::Reserve(n) => {
                num_vars = num_vars.max(*n);
                for arm in &mut arms {
                    arm.solver.reserve_vars(*n);
                }
                portfolio.reserve_vars(*n);
            }
            Op::Add(lits) => {
                for l in lits {
                    num_vars = num_vars.max(l.var().index() + 1);
                }
                formula.push(lits.clone());
                for arm in &mut arms {
                    arm.solver.add_clause(lits.iter().copied());
                }
                portfolio.add_clause(lits);
            }
            Op::Assume(l) => {
                num_vars = num_vars.max(l.var().index() + 1);
                staged.push(*l);
                for arm in &mut arms {
                    arm.solver.assume(*l);
                }
                portfolio.assume(*l);
            }
            Op::Budget(b) => {
                budget = *b;
                let budget = match b {
                    Some(n) => Budget::conflicts(*n),
                    None => Budget::unlimited(),
                };
                for arm in &mut arms {
                    arm.solver.set_budget(budget);
                }
                portfolio.set_budget(budget);
            }
            Op::Solve => {
                report.solves += 1;
                let assumptions = std::mem::take(&mut staged);
                let mut verdicts = Vec::with_capacity(arms.len() + 1);
                for arm in &mut arms {
                    let status = arm.solver.solve();
                    let core = arm.solver.failed_assumptions().to_vec();
                    certify(
                        arm.name,
                        Some(&arm.proof),
                        at,
                        &status,
                        &core,
                        &formula,
                        &assumptions,
                        num_vars,
                        budget,
                        &mut report,
                    )?;
                    arm.solver.audit_invariants().map_err(|e| {
                        format!("[{} op {at}] post-solve audit failed: {e}", arm.name)
                    })?;
                    arm.events
                        .borrow()
                        .check(arm.name, at, arm.solver.stats())?;
                    verdicts.push(verdict(&status));
                }
                let status = portfolio.solve();
                let core = portfolio.failed_assumptions().to_vec();
                certify(
                    "portfolio",
                    None,
                    at,
                    &status,
                    &core,
                    &formula,
                    &assumptions,
                    num_vars,
                    budget,
                    &mut report,
                )?;
                verdicts.push(verdict(&status));
                cross_check(at, &verdicts, &formula, &assumptions, num_vars, &mut report)?;
            }
        }
    }
    Ok(report)
}

/// Certifies a single engine answer against ground truth.
///
/// `proof` is the engine's accumulated DRAT stream when it keeps a sound
/// one; engines without a proof (the clause-sharing portfolio) have their
/// absolute refutations certified by the DPLL reference instead.
#[allow(clippy::too_many_arguments)]
fn certify(
    name: &'static str,
    proof: Option<&Rc<RefCell<DratProof>>>,
    at: usize,
    status: &SolveStatus,
    core: &[Lit],
    formula: &[Vec<Lit>],
    assumptions: &[Lit],
    num_vars: usize,
    budget: Option<u64>,
    report: &mut CaseReport,
) -> Result<(), String> {
    let fail = |msg: String| Err(format!("[{name} op {at}] {msg}"));
    match status {
        SolveStatus::Sat(model) => {
            if model.num_vars() < num_vars {
                return fail(format!(
                    "model covers {} vars, the session touched {num_vars}",
                    model.num_vars()
                ));
            }
            for (i, clause) in formula.iter().enumerate() {
                if !clause.iter().any(|&l| model.satisfies(l)) {
                    return fail(format!("model violates clause #{i} {clause:?}"));
                }
            }
            for &a in assumptions {
                if !model.satisfies(a) {
                    return fail(format!("model violates assumption {a:?}"));
                }
            }
            if !core.is_empty() {
                return fail(format!(
                    "SAT answer carries a failed-assumption core {core:?}"
                ));
            }
        }
        SolveStatus::Unsat => {
            let mut sorted = core.to_vec();
            sorted.sort_unstable_by_key(|l| l.code());
            sorted.dedup();
            if sorted.len() != core.len() {
                return fail(format!("failed-assumption core has duplicates: {core:?}"));
            }
            if let Some(stray) = core.iter().find(|l| !assumptions.contains(l)) {
                return fail(format!(
                    "core literal {stray:?} was never assumed (assumptions {assumptions:?})"
                ));
            }
            if core.is_empty() {
                if let Some(proof) = proof {
                    // Absolute refutation: the accumulated DRAT proof of the
                    // whole session must check against the accumulated
                    // formula.
                    let mut cnf = Cnf::with_vars(num_vars);
                    for clause in formula {
                        cnf.add_clause(berkmin_cnf::Clause::from_lits(clause.iter().copied()));
                    }
                    if let Err(e) = check_refutation(&cnf, &proof.borrow()) {
                        return fail(format!("DRAT check of the refutation failed: {e}"));
                    }
                } else {
                    // No sound proof exists (clause sharing): the formula
                    // itself must be UNSAT per the independent reference.
                    match reference::dpll(num_vars, formula, &[]) {
                        Some(false) => {}
                        Some(true) => {
                            return fail(
                                "absolute refutation contradicts the reference (SAT)".to_string(),
                            )
                        }
                        None => report.uncertified += 1,
                    }
                }
            } else {
                // Assumption conflict: formula ∧ core must be UNSAT per the
                // independent reference solver.
                match reference::dpll(num_vars, formula, core) {
                    Some(false) => {}
                    Some(true) => {
                        return fail(format!(
                            "core {core:?} does not force UNSAT (reference found a model)"
                        ))
                    }
                    None => report.uncertified += 1,
                }
            }
        }
        SolveStatus::Unknown(reason) => {
            if budget.is_none() {
                return fail(format!("Unknown({reason:?}) without any budget installed"));
            }
        }
    }
    Ok(())
}

/// Cross-checks all engine verdicts against each other and the reference.
fn cross_check(
    at: usize,
    verdicts: &[Verdict],
    formula: &[Vec<Lit>],
    assumptions: &[Lit],
    num_vars: usize,
    report: &mut CaseReport,
) -> Result<(), String> {
    let decided: Vec<Verdict> = verdicts
        .iter()
        .copied()
        .filter(|v| *v != Verdict::Unknown)
        .collect();
    if decided.contains(&Verdict::Sat) && decided.contains(&Verdict::Unsat) {
        return Err(format!("[op {at}] engines disagree: verdicts {verdicts:?}"));
    }
    match reference::dpll(num_vars, formula, assumptions) {
        Some(truth) => {
            let want = if truth { Verdict::Sat } else { Verdict::Unsat };
            if let Some(bad) = decided.iter().find(|&&v| v != want) {
                return Err(format!(
                    "[op {at}] engine verdict {bad:?} contradicts reference {want:?}"
                ));
            }
        }
        None => report.uncertified += 1,
    }
    Ok(())
}

/// [`run_case`], but converting panics (e.g. from the paranoid in-search
/// audits, or any plain solver bug) into an `Err` discrepancy.
pub fn run_case_catching(case: &Case) -> Result<CaseReport, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(case))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(format!("panic: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(script: &str) -> Case {
        Case::parse_script(script).unwrap()
    }

    #[test]
    fn empty_session_is_sat() {
        let r = run_case(&parse("solve\n")).unwrap();
        assert_eq!(
            r,
            CaseReport {
                solves: 1,
                uncertified: 0
            }
        );
    }

    #[test]
    fn explicit_empty_clause_is_certified_unsat() {
        run_case(&parse("add 1 2\nadd\nsolve\nsolve\n")).unwrap();
    }

    #[test]
    fn contradictory_units_check_through_drat() {
        run_case(&parse("add 1\nadd -1\nsolve\n")).unwrap();
    }

    #[test]
    fn duplicate_and_contradictory_assumptions_certify() {
        run_case(&parse(
            "add 1 2\nassume 1\nassume 1\nsolve\nassume 1\nassume -1\nsolve\n",
        ))
        .unwrap();
    }

    #[test]
    fn budget_abort_is_legal_only_under_a_budget() {
        // A tiny conflict budget on a hard-ish formula must produce Unknown
        // on at least one engine without tripping certification.
        let mut script = String::from("budget 1\n");
        for c in crate::gen::pigeonhole_clauses(5) {
            script.push_str("add");
            for l in &c {
                script.push_str(&format!(" {}", l.to_dimacs()));
            }
            script.push('\n');
        }
        script.push_str("solve\nbudget inf\nsolve\n");
        run_case(&parse(&script)).unwrap();
    }

    #[test]
    fn incremental_cores_are_certified() {
        // x1→x2→x3; assuming x1 and ¬x3 must yield a certified core.
        run_case(&parse(
            "add -1 2\nadd -2 3\nassume 1\nassume -3\nsolve\nsolve\n",
        ))
        .unwrap();
    }
}
