//! Differential fuzz harness for the BerkMin workspace.
//!
//! Each fuzz **case** is a sequence of incremental solver operations
//! ([`Op`]): clause additions, staged assumptions, budget changes and
//! `solve` calls. A case is executed simultaneously on two production
//! engines (the BerkMin preset and the Chaff-like ablation, both with the
//! `paranoid` invariant audits enabled) and every answer is *certified*
//! rather than trusted:
//!
//! - **SAT** — the model must satisfy every clause added so far and every
//!   assumption of the call, and must cover all reserved variables.
//! - **UNSAT with a non-empty core** — the core must be a duplicate-free
//!   subset of the staged assumptions, and the formula conjoined with just
//!   the core must be refuted by an independent scratch DPLL solver
//!   ([`reference::dpll`]).
//! - **UNSAT with an empty core** (absolute refutation) — the accumulated
//!   DRAT proof of the whole session must check against the accumulated
//!   raw formula via `berkmin_drat::check_refutation`.
//! - **Unknown** — only legal when a finite budget was installed.
//!
//! On top of per-answer certification, the two engines are cross-checked
//! against each other and against the reference solver (decided answers
//! must agree). Any discrepancy — including a panic from the paranoid
//! audits — is [shrunk](shrink::shrink_case) to a minimal op script and
//! written to disk as a replayable repro (see the `berkmin-fuzz` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod gen;
pub mod ops;
pub mod reference;
pub mod shrink;

pub use exec::{run_case, run_case_catching, CaseReport};
pub use gen::gen_case;
pub use ops::{Case, Op, ParseScriptError};
pub use shrink::{shrink_case, shrink_with};
