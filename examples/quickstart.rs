//! Quickstart: build a formula, solve it, inspect the model and the
//! solver's statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use berkmin_suite::prelude::*;

fn main() {
    // A tiny scheduling puzzle: three tasks (a, b, c), two time slots.
    // Variables: t<i>_early = task i runs in the early slot.
    let mut cnf = Cnf::new();
    let a = cnf.fresh_var();
    let b = cnf.fresh_var();
    let c = cnf.fresh_var();

    // a and b conflict: not both early, not both late.
    cnf.add_clause([Lit::neg(a), Lit::neg(b)]);
    cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
    // c must share a slot with a.
    cnf.add_clause([Lit::neg(a), Lit::pos(c)]);
    cnf.add_clause([Lit::pos(a), Lit::neg(c)]);
    // b refuses the late slot.
    cnf.add_clause([Lit::pos(b)]);

    println!("formula: {cnf}");

    let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
    match solver.solve() {
        SolveStatus::Sat(model) => {
            assert!(cnf.is_satisfied_by(&model));
            println!("satisfiable, model: {model}");
            for (name, var) in [("a", a), ("b", b), ("c", c)] {
                let slot = if model.value(var) == LBool::True {
                    "early"
                } else {
                    "late"
                };
                println!("  task {name}: {slot}");
            }
        }
        SolveStatus::Unsat => println!("unsatisfiable"),
        SolveStatus::Unknown(reason) => println!("gave up: {reason}"),
    }

    let stats = solver.stats();
    println!(
        "search: {} decisions, {} conflicts, {} propagations, {} restarts",
        stats.decisions, stats.conflicts, stats.propagations, stats.restarts
    );

    // The same API reads DIMACS files:
    let text = "c a tiny instance\np cnf 2 2\n1 -2 0\n-1 2 0\n";
    let parsed = berkmin_cnf::dimacs::parse(text).expect("valid DIMACS");
    let mut solver2 = Solver::new(&parsed, SolverConfig::berkmin());
    println!("DIMACS instance is {:?}", solver2.solve().is_sat());
}
