//! SAT planning — the paper's Hanoi workload as an application (§4):
//! encode Towers of Hanoi, solve at the optimal horizon, decode and print
//! the move sequence, and show that one step fewer is impossible.
//!
//! Run with: `cargo run --release --example hanoi_planning`

use berkmin_gens::hanoi;
use berkmin_suite::prelude::*;

fn main() {
    let disks = 4;
    let steps = hanoi::optimal_steps(disks);
    println!("Towers of Hanoi, {disks} disks: optimal plan has {steps} moves\n");

    // Satisfiable at the optimal horizon.
    let inst = hanoi::hanoi(disks);
    let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin());
    let status = solver.solve();
    let model = status.model().expect("solvable at the optimal horizon");
    assert!(inst.cnf.is_satisfied_by(model));

    // Decode the plan directly from the move variables. The encoding lays
    // out on(d,p,t) first, then mv(d,p,q,t); rather than duplicating the
    // index arithmetic we simulate the plan from the state variables.
    println!("plan (decoded from the state trajectory):");
    let mut pegs: Vec<Vec<usize>> = vec![(0..disks).rev().collect(), vec![], vec![]];
    let on = |d: usize, p: usize, t: usize| -> Var { Var::new(((t * disks + d) * 3 + p) as u32) };
    for t in 0..steps {
        // Find the disk whose peg changed between t and t+1.
        'disks: for d in 0..disks {
            for p in 0..3 {
                let before = model.value(on(d, p, t)) == LBool::True;
                let after = model.value(on(d, p, t + 1)) == LBool::True;
                if before && !after {
                    let q = (0..3)
                        .find(|&q| model.value(on(d, q, t + 1)) == LBool::True)
                        .expect("disk must land somewhere");
                    println!("  move {:>2}: disk {d} from peg {p} to peg {q}", t + 1);
                    assert_eq!(pegs[p].last(), Some(&d), "plan must be legal");
                    pegs[p].pop();
                    assert!(pegs[q].last().map_or(true, |&top| top > d));
                    pegs[q].push(d);
                    break 'disks;
                }
            }
        }
    }
    assert_eq!(pegs[2].len(), disks, "all disks must reach peg 2");
    println!("\nplan verified by simulation ✓");
    println!(
        "search effort: {} decisions, {} conflicts\n",
        solver.stats().decisions,
        solver.stats().conflicts
    );

    // One step fewer is impossible — and the solver proves it. The proof
    // sink attaches at construction time through the builder.
    let unsat = hanoi::hanoi_unsat(disks);
    let proof = std::rc::Rc::new(std::cell::RefCell::new(berkmin_drat::DratProof::new()));
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
        .proof(std::rc::Rc::clone(&proof))
        .cnf(&unsat.cnf)
        .build();
    assert!(solver.solve().is_unsat());
    let proof = proof.borrow();
    println!(
        "{} moves proven insufficient; machine-checkable proof has {} steps",
        steps - 1,
        proof.len()
    );
    check_refutation(&unsat.cnf, &proof).expect("refutation must check");
    println!("RUP proof checked ✓");
}
