//! Combinational equivalence checking — the paper's Miters workload as an
//! application (§4): verify that a restructured adder still adds, then
//! catch an injected bug and decode the counterexample pattern.
//!
//! Run with: `cargo run --release --example equivalence_checking`

use berkmin_circuit::rewrite::{inject_fault, restructure};
use berkmin_circuit::{arith, miter_encoding};
use berkmin_suite::prelude::*;

fn main() {
    // Golden design: an 8-bit ripple-carry adder.
    let golden = arith::ripple_carry_adder(8);
    println!("golden:      {golden}");

    // "Synthesized" version: aggressively restructured but equivalent.
    let synthesized = restructure(&golden, 2024);
    println!("synthesized: {synthesized}");

    let mut enc = miter_encoding(&golden, &synthesized);
    enc.constrain_output(0, true); // ask for any disagreeing input
    let mut solver = Solver::new(&enc.cnf, SolverConfig::berkmin());
    match solver.solve() {
        SolveStatus::Unsat => println!("✔ equivalence PROVED (miter unsatisfiable)"),
        SolveStatus::Sat(_) => unreachable!("restructuring preserves functions"),
        SolveStatus::Unknown(r) => println!("gave up: {r}"),
    }
    println!(
        "  proof effort: {} conflicts, {} decisions\n",
        solver.stats().conflicts,
        solver.stats().decisions
    );

    // Now a buggy revision: one gate silently flipped.
    let (buggy, node) = inject_fault(&golden, 7).expect("adders have gates");
    println!("buggy revision: gate {node:?} mutated");
    let mut enc = miter_encoding(&golden, &buggy);
    enc.constrain_output(0, true);
    let mut solver = Solver::new(&enc.cnf, SolverConfig::berkmin());
    match solver.solve() {
        SolveStatus::Sat(model) => {
            println!("✘ NOT equivalent — distinguishing input found:");
            let decode = |vars: &[Var]| -> u64 {
                vars.iter()
                    .enumerate()
                    .map(|(i, v)| ((model.value(*v) == LBool::True) as u64) << i)
                    .sum()
            };
            let a = decode(&enc.input_vars[0..8]);
            let b = decode(&enc.input_vars[8..16]);
            let cin = model.value(enc.input_vars[16]) == LBool::True;
            println!("  a = {a}, b = {b}, carry-in = {cin}");
            println!("  correct sum: {}", a + b + cin as u64);
        }
        SolveStatus::Unsat => println!("fault was unobservable (masked)"),
        SolveStatus::Unknown(r) => println!("gave up: {r}"),
    }
}
