//! Proof logging and independent checking: solve an unsatisfiable
//! instance with DRAT recording (the sink attaches to the solver at
//! construction time through the builder), write the proof in the standard
//! textual format, parse it back and verify it with the forward RUP
//! checker.
//!
//! Run with: `cargo run --release --example proof_logging`

use std::cell::RefCell;
use std::rc::Rc;

use berkmin_drat::{check_refutation, DratProof, TextDratWriter};
use berkmin_gens::hole;
use berkmin_suite::prelude::*;

fn main() {
    let inst = hole::pigeonhole(5);
    println!(
        "instance: {} ({} vars, {} clauses) — pigeonhole, UNSAT by construction\n",
        inst.name,
        inst.cnf.num_vars(),
        inst.cnf.num_clauses()
    );

    // Record the proof in memory while solving: the shared sink attaches
    // once at construction; the clone we keep reads the proof afterwards.
    let proof = Rc::new(RefCell::new(DratProof::new()));
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
        .proof(Rc::clone(&proof))
        .cnf(&inst.cnf)
        .build();
    assert!(solver.solve().is_unsat());
    let proof = proof.borrow();
    println!(
        "solved UNSAT in {} conflicts; proof: {} additions, {} deletions",
        solver.stats().conflicts,
        proof.num_additions(),
        proof.num_deletions()
    );

    // Serialize to the standard DRAT text format (as `drat-trim` reads).
    let writer = Rc::new(RefCell::new(TextDratWriter::new(Vec::new())));
    let mut solver2 = SolverBuilder::with_config(SolverConfig::berkmin())
        .proof(Rc::clone(&writer))
        .cnf(&inst.cnf)
        .build();
    assert!(solver2.solve().is_unsat());
    drop(solver2); // release the solver's handle on the shared sink
    let buffer = Rc::try_unwrap(writer)
        .unwrap_or_else(|_| panic!("sole owner after drop"))
        .into_inner()
        .into_inner()
        .expect("in-memory writer cannot fail");
    println!("textual DRAT: {} bytes; first lines:", buffer.len());
    let text = String::from_utf8(buffer).expect("DRAT text is ASCII");
    for line in text.lines().take(5) {
        println!("  {line}");
    }

    // Round-trip and check with the independent RUP checker.
    let parsed = DratProof::parse(&text).expect("own output parses");
    let report = check_refutation(&inst.cnf, &parsed).expect("proof must verify");
    println!(
        "\nRUP check ✓  ({} additions verified, {} deletions applied)",
        report.additions_checked, report.deletions_applied
    );

    // A tampered proof must be rejected.
    let mut tampered = DratProof::new();
    tampered.push(berkmin_drat::Step::Add(vec![Lit::pos(Var::new(0))]));
    tampered.push(berkmin_drat::Step::Add(vec![]));
    match check_refutation(&inst.cnf, &tampered) {
        Err(e) => println!("tampered proof correctly rejected: {e}"),
        Ok(_) => unreachable!("bogus proof must not verify"),
    }
}
