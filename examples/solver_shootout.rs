//! A miniature Table-10-style shootout: run the three solver
//! configurations (BerkMin, zChaff-like, limmat-like) on a mixed pool of
//! instances and print the robustness scoreboard.
//!
//! Run with: `cargo run --release --example solver_shootout`

use berkmin_gens::{beijing, hole, ksat, miters, parity};
use berkmin_suite::prelude::*;
use std::time::Instant;

fn main() {
    let pool: Vec<BenchInstance> = vec![
        hole::pigeonhole(7),
        parity::parity_learning(20, 22, 1),
        miters::multiplier_miter(5, 0),
        beijing::factor_prime(10, 2),
        ksat::planted_ksat(100, 420, 3, 5),
        parity::parity_unsat(12, 3),
    ];
    let solvers = [
        ("BerkMin", SolverConfig::berkmin()),
        ("zChaff ", SolverConfig::chaff_like()),
        ("limmat ", SolverConfig::limmat_like()),
    ];
    let budget = Budget::conflicts(200_000);

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>9}",
        "solver", "solved", "aborted", "conflicts", "time"
    );
    for (name, cfg) in solvers {
        let mut solved = 0;
        let mut aborted = 0;
        let mut conflicts = 0u64;
        let start = Instant::now();
        for inst in &pool {
            let mut solver = Solver::new(&inst.cnf, cfg.clone().with_budget(budget));
            match solver.solve() {
                SolveStatus::Sat(m) => {
                    assert!(inst.cnf.is_satisfied_by(&m), "{}: bad model", inst.name);
                    assert_ne!(inst.expected, Some(false), "{}: wrong verdict", inst.name);
                    solved += 1;
                }
                SolveStatus::Unsat => {
                    assert_ne!(inst.expected, Some(true), "{}: wrong verdict", inst.name);
                    solved += 1;
                }
                SolveStatus::Unknown(_) => aborted += 1,
            }
            conflicts += solver.stats().conflicts;
        }
        println!(
            "{:<16} {:>7}/{} {:>10} {:>12} {:>8.2}s",
            name,
            solved,
            pool.len(),
            aborted,
            conflicts,
            start.elapsed().as_secs_f64()
        );
    }
    println!("\n(all verdicts cross-checked against construction-guaranteed expectations)");
}
