//! Bounded model checking — the SAT-2002 `cnt10` workload as an
//! application (Table 10): unroll a sequential counter, ask when a state
//! is reachable, and extract the witness enable trace.
//!
//! Run with: `cargo run --release --example bmc_counter`

use berkmin_circuit::arith::counter;
use berkmin_circuit::bmc::unroll;
use berkmin_suite::prelude::*;

fn main() {
    let bits = 4;
    let n = counter(bits);
    println!("circuit: {n} ({bits}-bit free-running counter)\n");

    // Property: the counter shows all-ones. Reachable exactly at cycle
    // 2^bits − 1 after reset.
    let target_cycle = (1usize << bits) - 1;

    for cycle in [target_cycle - 1, target_cycle] {
        let mut enc = unroll(&n, cycle + 1);
        for o in 0..bits {
            enc.constrain_output_at(cycle, o, true);
        }
        let mut solver = Solver::new(&enc.cnf, SolverConfig::berkmin());
        match solver.solve() {
            SolveStatus::Sat(model) => {
                println!("cycle {cycle}: all-ones REACHABLE — trajectory:");
                for t in (0..=cycle).step_by((cycle / 5).max(1)) {
                    let value: u64 = enc.state_vars[t]
                        .iter()
                        .enumerate()
                        .map(|(i, v)| ((model.value(*v) == LBool::True) as u64) << i)
                        .sum();
                    println!("  t = {t:>2}: count = {value}");
                }
            }
            SolveStatus::Unsat => {
                println!("cycle {cycle}: all-ones UNREACHABLE (proved)");
            }
            SolveStatus::Unknown(r) => println!("cycle {cycle}: gave up ({r})"),
        }
    }

    // The enabled counter needs a chosen input trace: the solver must
    // discover that every enable has to be high.
    println!("\nenabled counter: solver must find the unique enable trace");
    let inst = berkmin_gens::bmc_gen::bmc_counter_enable(4);
    let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin());
    let status = solver.solve();
    assert!(status.is_sat());
    println!(
        "found it: {} decisions, {} conflicts",
        solver.stats().decisions,
        solver.stats().conflicts
    );
}
