//! Guards against the root-package trap: plain `cargo test -q` at the
//! workspace root runs only this facade package's suite, **not** the member
//! crates' unit and property tests — `--workspace` is required for those.
//! This test (which plain `cargo test -q` *does* run) pins the CI workflow
//! to the full-coverage invocations, so dropping a `--workspace` flag or
//! the bench smoke step fails loudly instead of silently shrinking CI.
//!
//! The assertions are comment-anchored: `.github/workflows/ci.yml` carries
//! a `workspace-guard:` marker comment pointing back at this file.

use std::fs;
use std::path::Path;

fn ci_config() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(".github/workflows/ci.yml");
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read CI workflow {}: {e}", path.display()))
}

#[test]
fn ci_tests_the_whole_workspace() {
    let ci = ci_config();
    for required in [
        "cargo test -q --workspace",
        "cargo test -q --doc --workspace",
        "cargo clippy --workspace --all-targets",
        "cargo build --release --workspace --all-targets",
    ] {
        assert!(
            ci.contains(required),
            "CI workflow no longer runs `{required}` — plain `cargo test` at \
             the root covers only the facade package, so CI must keep the \
             --workspace invocations (see this file's module docs)"
        );
    }
}

#[test]
fn ci_keeps_the_rustdoc_step() {
    // The builder/engine/sink redesign leans on intra-doc links between
    // crates; this step turns a broken link into a CI failure instead of a
    // silently rotting docs surface.
    let ci = ci_config();
    for required in [
        r#"RUSTDOCFLAGS="-D warnings""#,
        "cargo doc --no-deps --workspace",
    ] {
        assert!(
            ci.contains(required),
            "CI workflow dropped `{required}` — without the rustdoc step, \
             broken intra-doc links on the builder/engine API surface would \
             accrue silently"
        );
    }
}

#[test]
fn ci_keeps_the_bench_smoke_step() {
    let ci = ci_config();
    assert!(
        ci.contains("cargo bench -p berkmin-bench --bench bcp -- --test"),
        "CI workflow dropped the criterion-shim BCP bench smoke step; the \
         bench layer would rot silently without it"
    );
    assert!(
        ci.contains("cargo bench -p berkmin-bench --bench incremental_bmc -- --test"),
        "CI workflow dropped the incremental-BMC bench smoke step; it is \
         what re-checks that clause reuse keeps beating per-depth scratch \
         re-solving"
    );
    assert!(
        ci.contains("workspace-guard:"),
        "CI workflow lost its marker comment linking back to tests/workspace_guard.rs"
    );
}

#[test]
fn ci_keeps_the_portfolio_steps() {
    // The portfolio's correctness claim rests on the agreement sweep
    // (deterministic two-worker portfolio vs single-threaded BerkMin,
    // sharing on and off); its perf claim rests on the bench smoke that
    // writes BENCH_portfolio.json. Both must keep running on every push.
    let ci = ci_config();
    assert!(
        ci.contains("cargo test -q --release --test solver_agreement portfolio"),
        "CI workflow dropped the portfolio agreement sweep; portfolio \
         verdicts would no longer be checked against the lone solver"
    );
    assert!(
        ci.contains("--bin portfolio_bench -- --smoke --threads 2"),
        "CI workflow dropped the portfolio bench smoke step; the 1-vs-N \
         thread comparison (BENCH_portfolio.json) would rot silently"
    );
}

#[test]
fn ci_keeps_the_telemetry_smoke_step() {
    // The observability layer's end-to-end check: solve a generated
    // instance with --stats-json and -v, parse the emitted JSON back and
    // require the key counters non-zero — for the single engine and the
    // deterministic portfolio. Without this step a silently empty or
    // malformed stats file would ship unnoticed.
    let ci = ci_config();
    for required in [
        "-v --stats-json stats.json",
        "--deterministic \\\n            --stats-json pstats.json",
        r#"assert s["stats"]["conflicts"] > 0"#,
        r#"assert len(s["workers"]) == 2"#,
    ] {
        assert!(
            ci.contains(required),
            "CI workflow dropped `{required}` from the telemetry smoke step; \
             the --stats-json/-v surface would rot silently"
        );
    }
}

#[test]
fn ci_keeps_the_preprocessing_steps() {
    // The preprocessing subsystem's three CI legs: the agreement sweep that
    // runs every paper configuration with simplification off and fully on,
    // the proof pipeline that pushes elimination's add/delete lines through
    // the independent checker (plus the reconstructed-model SAT arm), and
    // the bench smoke that writes BENCH_preprocess.json.
    let ci = ci_config();
    assert!(
        ci.contains("cargo test -q --release --test solver_agreement all_configs"),
        "CI workflow dropped the simplified agreement sweep; preprocessing \
         could silently move verdicts on the paper configurations"
    );
    assert!(
        ci.contains("--elim --proof hole5.drat --check-proof hole5.cnf"),
        "CI workflow dropped the elimination proof pipeline; DRAT streams \
         with elimination deletions would no longer be checked end-to-end"
    );
    assert!(
        ci.contains("grep -q '^d ' hole5.drat"),
        "CI workflow no longer insists the elimination proof carries `d` \
         lines — the deletion-emitting path would rot silently"
    );
    assert!(
        ci.contains("--elim elim_sat.cnf"),
        "CI workflow dropped the reconstructed-model SAT arm; model \
         extension over eliminated variables would go unexercised"
    );
    assert!(
        ci.contains("--bin preprocess_bench -- --smoke"),
        "CI workflow dropped the preprocess bench smoke step; the on/off \
         comparison (BENCH_preprocess.json) would rot silently"
    );
}

#[test]
fn ci_keeps_the_fuzz_smoke_step() {
    // The differential fuzz harness is the integrity layer's teeth: a
    // bounded fixed-seed sweep in which every SAT model, UNSAT core and
    // refutation proof is independently certified. CI must keep running it.
    let ci = ci_config();
    assert!(
        ci.contains("cargo run --release -p berkmin-fuzz -- run --cases"),
        "CI workflow dropped the differential fuzz smoke step; solver \
         answers would no longer be cross-certified on every push"
    );
}
