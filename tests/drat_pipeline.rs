//! DRAT pipeline end-to-end: solve a small UNSAT instance with proof
//! logging on (attached at construction through the builder), and validate
//! the refutation with the independent RUP checker — both the in-memory
//! proof and its textual DRAT round-trip.

use std::cell::RefCell;
use std::rc::Rc;

use berkmin::{DbPolicy, RestartPolicy};
use berkmin_drat::{check_refutation, DratProof, TextDratWriter};
use berkmin_gens::hole;
use berkmin_suite::prelude::*;

/// Builds a BerkMin solver for `cnf` under `cfg` with a shared in-memory
/// proof attached; the returned handle reads the proof back afterwards.
fn proof_logged_solver(cnf: &Cnf, cfg: SolverConfig) -> (Solver, Rc<RefCell<DratProof>>) {
    let proof = Rc::new(RefCell::new(DratProof::new()));
    let solver = SolverBuilder::with_config(cfg)
        .proof(Rc::clone(&proof))
        .cnf(cnf)
        .build();
    (solver, proof)
}

#[test]
fn hole5_refutation_is_machine_checkable() {
    let inst = hole::pigeonhole(5); // PHP(6,5): UNSAT by construction (§9)
    assert_eq!(inst.expected, Some(false));

    let (mut solver, proof) = proof_logged_solver(&inst.cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_unsat());
    let proof = proof.borrow();
    assert!(proof.ends_with_empty_clause());

    let report = check_refutation(&inst.cnf, &proof).expect("refutation must check");
    assert!(
        report.additions_checked > 0,
        "pigeonhole needs real learnt clauses, not a propagation-only refutation"
    );
}

#[test]
fn streamed_text_proof_checks_after_reparsing() {
    // The same run, but streamed as textual DRAT and re-parsed — the
    // on-disk format must carry everything the checker needs.
    let inst = hole::pigeonhole(5);
    let sink = Rc::new(RefCell::new(TextDratWriter::new(Vec::new())));
    let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
        .proof(Rc::clone(&sink))
        .cnf(&inst.cnf)
        .build();
    assert!(solver.solve().is_unsat());

    drop(solver); // release the solver's handle on the shared sink
    let sink = Rc::try_unwrap(sink).unwrap_or_else(|_| panic!("sole owner after drop"));
    let bytes = sink
        .into_inner()
        .into_inner()
        .expect("in-memory writer cannot fail");
    let text = String::from_utf8(bytes).expect("DRAT text is ASCII");
    let proof = DratProof::parse(&text).expect("emitted DRAT must re-parse");
    assert!(proof.ends_with_empty_clause());
    check_refutation(&inst.cnf, &proof).expect("re-parsed refutation must check");
}

#[test]
fn deletion_heavy_hole5_proof_carries_d_lines_and_still_checks() {
    // Force the §8 reducer to actually delete clauses on hole(5): frequent
    // restarts plus a GRASP-style length bound almost every learnt clause
    // exceeds. The compacting GC emits the DRAT `d` lines at reclaim time;
    // the independent checker must accept the proof with deletion enabled.
    let inst = hole::pigeonhole(5);
    let mut cfg = SolverConfig::berkmin();
    cfg.restart = RestartPolicy::FixedInterval(25);
    cfg.db_policy = DbPolicy::LengthBounded { max_len: 3 };

    let (mut solver, proof) = proof_logged_solver(&inst.cnf, cfg);
    assert!(solver.solve().is_unsat());
    let proof = proof.borrow();

    let stats = solver.stats();
    assert!(stats.deleted_clauses > 0, "reduction must delete clauses");
    assert!(
        stats.gc_runs > 0,
        "deletions must trigger the compacting GC"
    );
    assert!(stats.gc_words_reclaimed > 0, "GC must reclaim arena space");
    assert!(
        proof.num_deletions() > 0,
        "the GC path must emit DRAT `d` lines"
    );
    assert!(
        proof.to_text().lines().any(|l| l.starts_with("d ")),
        "textual DRAT must carry the deletions"
    );
    check_refutation(&inst.cnf, &proof).expect("refutation with deletions must check");
}

#[test]
fn budget_aborted_runs_leave_no_empty_clause_in_the_proof() {
    // An Unknown verdict must not smuggle a refutation into the sink.
    let inst = hole::pigeonhole(7); // hard enough to exhaust a tiny budget
    let cfg = SolverConfig::berkmin().with_budget(Budget::conflicts(5));
    let (mut solver, proof) = proof_logged_solver(&inst.cnf, cfg);
    match solver.solve() {
        SolveStatus::Unknown(_) => assert!(!proof.borrow().ends_with_empty_clause()),
        other => panic!("expected a budget abort, got {other:?}"),
    }
}

#[test]
fn explicit_empty_clause_proof_checks_and_does_not_regrow() {
    // Degenerate input: the formula itself contains the empty clause. The
    // emitted refutation must still check, and re-solving the refuted
    // session must not re-emit proof steps.
    let mut cnf = Cnf::new();
    cnf.add_clause(Clause::from_lits([
        Lit::from_dimacs(1),
        Lit::from_dimacs(2),
    ]));
    cnf.add_clause(Clause::from_lits([]));
    let (mut solver, proof) = proof_logged_solver(&cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_unsat());
    assert!(solver.failed_assumptions().is_empty());
    assert!(proof.borrow().ends_with_empty_clause());
    check_refutation(&cnf, &proof.borrow()).expect("empty-clause refutation must check");
    let before = proof.borrow().len();
    assert!(solver.solve().is_unsat());
    assert_eq!(proof.borrow().len(), before, "re-solve must not re-emit");
}

#[test]
fn level0_contradiction_proof_checks() {
    // Two contradictory units refute the formula during level-0
    // propagation — before any search — and the proof must still check.
    let mut cnf = Cnf::new();
    cnf.add_clause(Clause::from_lits([Lit::from_dimacs(1)]));
    cnf.add_clause(Clause::from_lits([Lit::from_dimacs(-1)]));
    let (mut solver, proof) = proof_logged_solver(&cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_unsat());
    check_refutation(&cnf, &proof.borrow()).expect("unit-contradiction proof must check");
}
