//! End-to-end integration: every benchmark family solves to its
//! construction-guaranteed verdict, models verify, and UNSAT answers carry
//! machine-checkable proofs.

use berkmin_drat::{check_refutation, DratProof};
use berkmin_gens::*;
use berkmin_suite::prelude::*;

/// Small representatives of every generator family.
fn family_samples() -> Vec<BenchInstance> {
    vec![
        hole::pigeonhole(5),
        hole::pigeonhole_sat(5),
        parity::parity_learning(12, 20, 1),
        parity::parity_unsat(10, 1),
        hanoi::hanoi(3),
        hanoi::hanoi_unsat(3),
        blocksworld::blocksworld(4, 5, 1),
        blocksworld::blocksworld_unsat(5, 6, 1),
        blocksworld::blocksworld_tight(5, 6, 1),
        blocksworld::blocksworld_tight_unsat(5, 6, 1),
        beijing::adder_goal(8, 2, 1),
        beijing::adder_unsat(8),
        beijing::chained_adder_goal(6, 1),
        beijing::factor_semiprime(5, 1),
        beijing::factor_prime(5, 1),
        miters::equivalent_miter(80, 30, 1),
        miters::buggy_miter(80, 30, 1),
        miters::adder_miter(8, 3),
        miters::multiplier_miter(4, 1),
        miters::rect_multiplier_miter(4, 5, 1),
        pipeline::npipe(2),
        pipeline::npipe_ooo(2),
        pipeline::vliw_sat(4, 1),
        pipeline::sss_check(3, false, 1),
        pipeline::sss_check(3, true, 1),
        ksat::planted_ksat(40, 160, 3, 1),
        ksat::xor_unsat(16, 20, 1),
        bmc_gen::bmc_counter(3),
        bmc_gen::bmc_counter_unsat(3),
        bmc_gen::bmc_counter_enable(3),
        bmc_gen::bmc_counter_enable_unsat(3),
        bmc_gen::bmc_fifo(5, 8),
        bmc_gen::bmc_fifo(8, 5),
        bmc_gen::bmc_f2clk(3),
    ]
}

#[test]
fn every_family_reaches_its_expected_verdict() {
    for inst in family_samples() {
        let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin());
        match solver.solve() {
            SolveStatus::Sat(model) => {
                assert!(inst.cnf.is_satisfied_by(&model), "{}: bad model", inst.name);
                assert_ne!(inst.expected, Some(false), "{}: expected UNSAT", inst.name);
            }
            SolveStatus::Unsat => {
                assert_ne!(inst.expected, Some(true), "{}: expected SAT", inst.name);
            }
            SolveStatus::Unknown(r) => panic!("{}: aborted without budget: {r}", inst.name),
        }
    }
}

#[test]
fn unsat_families_produce_checkable_refutations() {
    for inst in family_samples() {
        if inst.expected != Some(false) {
            continue;
        }
        let proof = std::rc::Rc::new(std::cell::RefCell::new(DratProof::new()));
        let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
            .proof(std::rc::Rc::clone(&proof))
            .cnf(&inst.cnf)
            .build();
        assert!(solver.solve().is_unsat(), "{}: expected UNSAT", inst.name);
        let proof = proof.borrow();
        assert!(
            proof.ends_with_empty_clause(),
            "{}: no empty clause",
            inst.name
        );
        // Zero checked additions is legitimate when the formula is already
        // contradictory by unit propagation (e.g. tight BMC horizons).
        check_refutation(&inst.cnf, &proof)
            .unwrap_or_else(|e| panic!("{}: proof rejected: {e}", inst.name));
    }
}

#[test]
fn ablation_suite_classes_have_consistent_metadata() {
    use berkmin_gens::suites::{class_suite, ABLATION_ORDER};
    for class in ABLATION_ORDER {
        for inst in class_suite(class) {
            assert!(inst.cnf.num_vars() > 0, "{}: empty instance", inst.name);
            assert!(inst.cnf.num_clauses() > 0, "{}: no clauses", inst.name);
            assert!(
                inst.expected.is_some(),
                "{}: suites must know verdicts",
                inst.name
            );
        }
    }
}

#[test]
fn sat2002_rows_solve_within_budget() {
    // Every Table 10 row must be decidable by the default solver within the
    // table's budget (the other two configurations may abort — that is the
    // point of the comparison).
    let budget = Budget::conflicts(1_000_000);
    for (family, inst) in berkmin_gens::suites::sat2002_suite() {
        // Skip the three heaviest rows to keep CI time bounded; the table
        // binary itself covers them.
        if inst.cnf.num_clauses() > 9_000 {
            continue;
        }
        let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin().with_budget(budget));
        match solver.solve() {
            SolveStatus::Sat(m) => {
                assert!(inst.cnf.is_satisfied_by(&m), "{family}/{}", inst.name);
                assert_ne!(inst.expected, Some(false), "{family}/{}", inst.name);
            }
            SolveStatus::Unsat => {
                assert_ne!(inst.expected, Some(true), "{family}/{}", inst.name);
            }
            SolveStatus::Unknown(r) => {
                panic!("{family}/{}: default solver aborted: {r}", inst.name)
            }
        }
    }
}
