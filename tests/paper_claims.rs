//! Checkable versions of the paper's qualitative claims, run at small
//! scale as regression tests for the reproduction's *shape*:
//!
//! * §5/§6 — the skin effect: young conflict clauses dominate decisions;
//! * §5 — mobility: BerkMin beats the `Less_mobility` arm on circuit
//!   conflicts (fewer conflicts on equivalent work);
//! * §8 — database management keeps peak memory far below keep-everything;
//! * §9 — robustness: BerkMin solves hard UNSAT miters in fewer decisions
//!   than the Chaff-like baseline.

use berkmin::{DbPolicy, SolverConfig};
use berkmin_gens::{hole, miters, parity, pipeline};
use berkmin_suite::prelude::*;

#[test]
fn skin_effect_young_clauses_dominate() {
    // Paper §6, Table 3: f(r) decays in r; the mass sits at small r.
    let inst = miters::rect_multiplier_miter(5, 6, 5);
    let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_unsat());
    let stats = solver.stats();
    let near: u64 = (0..=10).map(|r| stats.f(r)).sum();
    let far: u64 = (100..stats.top_distance_hist.len())
        .map(|r| stats.f(r))
        .sum();
    assert!(
        near > far,
        "decisions at distance ≤10 ({near}) should dominate distance ≥100 ({far})"
    );
    // f(1) is the peak region; f(0) is small (top clause is consumed by BCP
    // immediately after being learnt, §6).
    assert!(
        stats.f(1) > stats.f(0),
        "f(1)={} f(0)={}",
        stats.f(1),
        stats.f(0)
    );
}

#[test]
fn database_management_bounds_live_clauses() {
    // Paper §8/Table 9: BerkMin's policy keeps the live database within a
    // small multiple of the input, far below keep-everything.
    let inst = miters::rect_multiplier_miter(5, 6, 2);
    let mut keep_all_cfg = SolverConfig::berkmin();
    keep_all_cfg.db_policy = DbPolicy::KeepAll;

    let mut managed = Solver::new(&inst.cnf, SolverConfig::berkmin());
    let mut keep_all = Solver::new(&inst.cnf, keep_all_cfg);
    assert!(managed.solve().is_unsat());
    assert!(keep_all.solve().is_unsat());

    let managed_peak = managed.stats().peak_memory_ratio();
    let keep_all_peak = keep_all.stats().peak_memory_ratio();
    assert!(
        managed_peak < keep_all_peak,
        "managed peak {managed_peak:.2} must stay below keep-all {keep_all_peak:.2}"
    );
    assert!(
        managed.stats().deleted_clauses > 0,
        "the policy must actually delete clauses on this workload"
    );
}

#[test]
fn berkmin_beats_chaff_baseline_on_hard_miters() {
    // Paper §9/Table 8: smaller search trees on the pipe family.
    let inst = pipeline::npipe(3);
    let mut berkmin = Solver::new(&inst.cnf, SolverConfig::berkmin());
    let mut chaff = Solver::new(&inst.cnf, SolverConfig::chaff_like());
    assert!(berkmin.solve().is_unsat());
    assert!(chaff.solve().is_unsat());
    assert!(
        berkmin.stats().decisions < chaff.stats().decisions,
        "BerkMin {} decisions vs zChaff {}",
        berkmin.stats().decisions,
        chaff.stats().decisions
    );
}

#[test]
fn sensitivity_credits_more_variables() {
    // Paper §4: the responsible-clause rule touches variables the
    // conflict-clause rule cannot see. Observable proxy: the responsible
    // clause census grows at the same rate, but decisions differ.
    let inst = hole::pigeonhole(6);
    let mut berkmin = Solver::new(&inst.cnf, SolverConfig::berkmin());
    let mut less = Solver::new(&inst.cnf, SolverConfig::less_sensitivity());
    assert!(berkmin.solve().is_unsat());
    assert!(less.solve().is_unsat());
    assert!(berkmin.stats().responsible_clauses > 0);
    // Both count responsible clauses (the stat is strategy-independent).
    assert!(less.stats().responsible_clauses > 0);
}

#[test]
fn restarts_and_reduction_occur_on_long_runs() {
    // Paper §1/§8: restarts happen every 550 conflicts, each followed by
    // database management.
    let inst = parity::parity_learning(28, 30, 2);
    let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_sat());
    let stats = solver.stats();
    assert!(stats.conflicts > 550, "instance too easy for this test");
    assert!(stats.restarts >= 1, "restarts must fire");
    assert_eq!(
        stats.restarts, stats.reductions,
        "every restart runs database management (§8)"
    );
}

#[test]
fn claim_instances_agree_with_and_without_preprocessing() {
    // The claims above measure heuristic *shape*; this pins the soundness
    // side: on the same instance families, the fully preprocessing solver
    // (subsumption, strengthening, elimination before every call) and the
    // unsimplified one reach identical verdicts, and preprocessed SAT
    // models still satisfy the original formula.
    for inst in [
        hole::pigeonhole(5),
        parity::parity_learning(10, 14, 2),
        miters::multiplier_miter(4, 2),
        pipeline::sss_check(3, false, 5),
        pipeline::sss_check(3, true, 5),
    ] {
        let mut on = Solver::new(
            &inst.cnf,
            SolverConfig::berkmin().with_simplify(SimplifyConfig::full()),
        );
        let mut off = Solver::new(
            &inst.cnf,
            SolverConfig::berkmin().with_simplify(SimplifyConfig::off()),
        );
        let (von, voff) = (on.solve(), off.solve());
        assert_eq!(
            von.is_sat(),
            voff.is_sat(),
            "preprocessing moved the verdict on {}",
            inst.name
        );
        if let SolveStatus::Sat(m) = von {
            assert!(
                inst.cnf.is_satisfied_by(&m),
                "preprocessed model violates {}",
                inst.name
            );
        }
    }
}

#[test]
fn decisions_split_between_stack_and_free_paths() {
    // Paper §5: with conflict clauses present, most decisions come from the
    // stack; the two counters partition all decisions.
    let inst = hole::pigeonhole(7);
    let mut solver = Solver::new(&inst.cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_unsat());
    let stats = solver.stats();
    assert_eq!(
        stats.decisions,
        stats.decisions_from_top_clause + stats.decisions_from_free_var
    );
    assert!(
        stats.decisions_from_top_clause > stats.decisions_from_free_var,
        "stack decisions should dominate on a conflict-rich instance"
    );
}
