//! End-to-end tests of the `berkmin-cli` binary: DIMACS in, SAT-competition
//! output and exit codes out, DRAT proof emission and self-checking.

use std::io::Write;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_berkmin-cli"))
}

fn run_with_stdin(args: &[&str], input: &str) -> (String, i32) {
    let mut child = cli()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn berkmin-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("cli runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn sat_instance_reports_model_and_exit_10() {
    let (stdout, code) = run_with_stdin(&[], "p cnf 2 2\n1 -2 0\n2 0\n");
    assert_eq!(code, 10);
    assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
    assert!(stdout.contains("v 1 2 0"), "model line expected: {stdout}");
}

#[test]
fn unsat_instance_reports_exit_20_with_checked_proof() {
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(&["--check-proof"], dimacs);
    assert_eq!(code, 20);
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    assert!(stdout.contains("proof checked"), "{stdout}");
}

#[test]
fn proof_file_is_written_and_parseable() {
    let dir = std::env::temp_dir().join(format!("berkmin_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let proof_path = dir.join("out.drat");
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (_, code) = run_with_stdin(
        &["--proof", proof_path.to_str().unwrap(), "--quiet"],
        dimacs,
    );
    assert_eq!(code, 20);
    let text = std::fs::read_to_string(&proof_path).expect("proof written");
    let proof = berkmin_drat::DratProof::parse(&text).expect("proof parses");
    assert!(proof.ends_with_empty_clause());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_on_budget_exit_0() {
    // Pigeonhole with 1-conflict budget.
    let mut dimacs = String::from("p cnf 12 22\n");
    // 4 pigeons, 3 holes: var = p*3 + h + 1.
    for p in 0..4 {
        for h in 0..3 {
            dimacs.push_str(&format!("{} ", p * 3 + h + 1));
        }
        dimacs.push_str("0\n");
    }
    for h in 0..3 {
        for p1 in 0..4 {
            for p2 in (p1 + 1)..4 {
                dimacs.push_str(&format!("-{} -{} 0\n", p1 * 3 + h + 1, p2 * 3 + h + 1));
            }
        }
    }
    let (stdout, code) = run_with_stdin(&["--max-conflicts", "1", "--no-model"], &dimacs);
    assert_eq!(code, 0);
    assert!(stdout.contains("s UNKNOWN"), "{stdout}");
}

#[test]
fn config_presets_are_selectable() {
    for cfg in ["berkmin", "chaff", "limmat", "less-mobility"] {
        let (stdout, code) = run_with_stdin(&["--config", cfg], "p cnf 1 1\n1 0\n");
        assert_eq!(code, 10, "config {cfg}");
        assert!(stdout.contains("s SATISFIABLE"), "config {cfg}: {stdout}");
    }
}

#[test]
fn malformed_input_exits_2() {
    let (_, code) = run_with_stdin(&["--quiet"], "p cnf x y\n");
    assert_eq!(code, 2);
}

#[test]
fn bmc_subcommand_incremental_and_scratch_agree_on_depth() {
    // The enabled 3-bit counter first shows all-ones at depth 7; both modes
    // must find it and exit with the SAT code.
    for extra in [&[][..], &["--scratch"][..]] {
        let mut args = vec!["bmc", "--bits", "3"];
        args.extend_from_slice(extra);
        let (stdout, code) = run_with_stdin(&args, "");
        assert_eq!(code, 10, "args {args:?}: {stdout}");
        assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
        assert!(
            stdout.contains("first reachable at depth 7"),
            "args {args:?}: {stdout}"
        );
    }
}

#[test]
fn bmc_subcommand_reports_unreachable_within_short_bound() {
    let (stdout, code) = run_with_stdin(&["bmc", "--bits", "3", "--max-depth", "5"], "");
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    assert!(stdout.contains("unreachable within depth 5"), "{stdout}");
}

#[test]
fn bmc_subcommand_budget_abort_reports_unknown() {
    let (stdout, code) = run_with_stdin(&["bmc", "--bits", "4", "--max-conflicts", "1"], "");
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("s UNKNOWN"), "{stdout}");
    assert!(stdout.contains("conflict budget exhausted"), "{stdout}");
}

#[test]
fn empty_formula_p_cnf_0_0_is_sat_with_empty_model_line() {
    // The degenerate "p cnf 0 0" input: SAT, a bare "v 0" model line, and
    // the SAT-competition exit code — consistent with the library answer.
    let (stdout, code) = run_with_stdin(&[], "p cnf 0 0\n");
    assert_eq!(code, 10, "{stdout}");
    assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
    assert!(
        stdout.contains("v 0"),
        "empty model line expected: {stdout}"
    );
}

#[test]
fn explicit_empty_clause_is_unsat_with_checkable_proof() {
    // A bare "0" clause line is the empty clause: immediately UNSAT, and
    // both the written proof and the self-check must handle it.
    let dir = std::env::temp_dir().join(format!("berkmin_cli_empty_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let proof_path = dir.join("empty.drat");
    let dimacs = "p cnf 2 2\n1 2 0\n0\n";
    let (stdout, code) = run_with_stdin(
        &["--check-proof", "--proof", proof_path.to_str().unwrap()],
        dimacs,
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    let text = std::fs::read_to_string(&proof_path).expect("proof written");
    let proof = berkmin_drat::DratProof::parse(&text).expect("proof parses");
    assert!(proof.ends_with_empty_clause(), "proof: {text:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_reserved_vars_without_clauses_get_a_full_model() {
    // "p cnf 4 0": no constraints, but the model must still assign all
    // four header-reserved variables.
    let (stdout, code) = run_with_stdin(&[], "p cnf 4 0\n");
    assert_eq!(code, 10, "{stdout}");
    let model_line = stdout
        .lines()
        .find(|l| l.starts_with("v "))
        .expect("model line");
    let vals: Vec<i32> = model_line[2..]
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(vals.len(), 5, "4 vars + terminator: {model_line}");
    assert_eq!(*vals.last().unwrap(), 0);
    for v in 1..=4i32 {
        assert!(
            vals.contains(&v) || vals.contains(&-v),
            "variable {v} missing from model: {model_line}"
        );
    }
}

#[test]
fn portfolio_engine_solves_sat_and_unsat_with_worker_summary() {
    // Deterministic two-worker portfolio: verdicts match the single-threaded
    // answer and the worker summary line names the winner.
    let unsat = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(
        &["--engine", "portfolio", "--threads", "2", "--deterministic"],
        unsat,
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    let workers = stdout
        .lines()
        .find(|l| l.starts_with("c workers"))
        .expect("worker summary line");
    assert!(workers.contains("winner"), "{workers}");
    assert!(workers.contains("exported"), "{workers}");

    let (stdout, code) = run_with_stdin(
        &["--engine", "portfolio", "--threads", "2", "--deterministic"],
        "p cnf 2 2\n1 -2 0\n2 0\n",
    );
    assert_eq!(code, 10, "{stdout}");
    assert!(stdout.contains("v 1 2 0"), "{stdout}");
}

#[test]
fn portfolio_rejects_proof_logging_while_sharing_is_on() {
    // A DRAT proof of a sharing portfolio would be unsound (imported clauses
    // are not RUP-derivable in the importer's log) — the CLI must refuse the
    // combination up front instead of emitting a bogus proof.
    let mut child = cli()
        .args(["--engine", "portfolio", "--check-proof"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn berkmin-cli");
    // The CLI rejects the flag combination before reading any input, so it
    // may already have exited — a broken pipe here is part of the contract.
    let _ = child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"p cnf 1 2\n1 0\n-1 0\n");
    let out = child.wait_with_output().expect("cli runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("configuration error"), "{stderr}");
}

#[test]
fn portfolio_without_sharing_emits_a_checkable_winner_proof() {
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(
        &[
            "--engine",
            "portfolio",
            "--no-share",
            "--deterministic",
            "--check-proof",
        ],
        dimacs,
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("proof checked"), "{stdout}");
}

#[test]
fn time_line_reports_average_and_max_lbd() {
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(&["--no-model"], dimacs);
    assert_eq!(code, 20, "{stdout}");
    let time_line = stdout
        .lines()
        .find(|l| l.starts_with("c time"))
        .expect("time line");
    assert!(time_line.contains("avg lbd"), "{time_line}");
    assert!(time_line.contains("max"), "{time_line}");
}

/// hole(n) as DIMACS text: n+1 pigeons, n holes — UNSAT with enough
/// conflicts to exercise restarts and progress reporting.
fn pigeonhole_dimacs(n: usize) -> String {
    let var = |p: usize, h: usize| p * n + h + 1;
    let mut clauses = Vec::new();
    for p in 0..=n {
        clauses.push(
            (0..n)
                .map(|h| var(p, h).to_string())
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    for h in 0..n {
        for p1 in 0..=n {
            for p2 in (p1 + 1)..=n {
                clauses.push(format!("-{} -{}", var(p1, h), var(p2, h)));
            }
        }
    }
    let mut out = format!("p cnf {} {}\n", (n + 1) * n, clauses.len());
    for c in clauses {
        out.push_str(&c);
        out.push_str(" 0\n");
    }
    out
}

/// Fetches a named counter out of the CLI's
/// `c decisions .. conflicts .. propagations ..` stats line.
fn stdout_counter(stdout: &str, name: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("c decisions"))
        .expect("stats line");
    let mut toks = line.split_whitespace();
    while let Some(tok) = toks.next() {
        if tok == name {
            return toks.next().and_then(|v| v.parse().ok()).expect("count");
        }
    }
    panic!("counter {name} not on stats line: {line}");
}

#[test]
fn stats_json_matches_the_printed_stats_for_the_single_engine() {
    let dir = std::env::temp_dir().join(format!("berkmin_cli_stats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stats.json");
    let (stdout, code) = run_with_stdin(
        &["--stats-json", path.to_str().unwrap(), "--no-model"],
        &pigeonhole_dimacs(5),
    );
    assert_eq!(code, 20, "{stdout}");
    let text = std::fs::read_to_string(&path).expect("stats written");
    let snapshot = berkmin::StatsSnapshot::parse(&text).expect("stats JSON parses");
    assert_eq!(snapshot.verdict, berkmin::SolveVerdict::Unsat);
    assert!(snapshot.seconds >= 0.0);
    // The JSON is the same snapshot the human-readable lines came from.
    assert_eq!(
        snapshot.stats.conflicts,
        stdout_counter(&stdout, "conflicts")
    );
    assert_eq!(
        snapshot.stats.decisions,
        stdout_counter(&stdout, "decisions")
    );
    assert_eq!(snapshot.stats.restarts, stdout_counter(&stdout, "restarts"));
    assert!(snapshot.stats.conflicts > 0);
    assert_eq!(snapshot.stats.solve_calls, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_json_for_the_deterministic_portfolio_carries_worker_reports() {
    let dir = std::env::temp_dir().join(format!("berkmin_cli_pstats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pstats.json");
    let (stdout, code) = run_with_stdin(
        &[
            "--engine",
            "portfolio",
            "--threads",
            "2",
            "--deterministic",
            "--stats-json",
            path.to_str().unwrap(),
            "--no-model",
        ],
        &pigeonhole_dimacs(5),
    );
    assert_eq!(code, 20, "{stdout}");
    let text = std::fs::read_to_string(&path).expect("stats written");
    let snapshot = berkmin::StatsSnapshot::parse(&text).expect("stats JSON parses");
    assert_eq!(snapshot.verdict, berkmin::SolveVerdict::Unsat);
    assert_eq!(
        snapshot.stats.conflicts,
        stdout_counter(&stdout, "conflicts")
    );

    // The extra "workers" section: one entry per worker, whose exported
    // counts sum to the merged stats counter.
    let value = berkmin::telemetry::json::parse(&text).expect("raw JSON parses");
    let workers = value
        .get("workers")
        .and_then(|w| w.as_array())
        .expect("workers array");
    assert_eq!(workers.len(), 2);
    let exported: u64 = workers
        .iter()
        .map(|w| w.get("exported").and_then(|v| v.as_u64()).unwrap())
        .sum();
    assert_eq!(exported, snapshot.stats.clauses_exported);
    assert!(workers
        .iter()
        .any(|w| w.get("winner").and_then(|v| v.as_bool()) == Some(true)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bmc_stats_json_records_per_depth_results() {
    let dir = std::env::temp_dir().join(format!("berkmin_cli_bmcstats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bmc.json");
    let (stdout, code) = run_with_stdin(
        &[
            "bmc",
            "--bits",
            "3",
            "--max-depth",
            "5",
            "--stats-json",
            path.to_str().unwrap(),
        ],
        "",
    );
    assert_eq!(code, 20, "{stdout}");
    let text = std::fs::read_to_string(&path).expect("stats written");
    let snapshot = berkmin::StatsSnapshot::parse(&text).expect("stats JSON parses");
    assert_eq!(snapshot.verdict, berkmin::SolveVerdict::Unsat);
    assert_eq!(snapshot.stats.solve_calls, 6, "one per depth 0..=5");
    let value = berkmin::telemetry::json::parse(&text).unwrap();
    let depths = value
        .get("depths")
        .and_then(|d| d.as_array())
        .expect("depths array");
    assert_eq!(depths.len(), 6);
    assert!(depths
        .iter()
        .all(|d| { d.get("result").and_then(|r| r.as_str()) == Some("unreachable") }));
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: a budget-aborted BMC sweep used to return before the
/// `c time … total conflicts` and warm-engine summary lines — an unknown
/// verdict silently swallowed the run's accounting. Both arms must print
/// the summary on every outcome.
#[test]
fn bmc_unknown_still_prints_the_run_summary() {
    // Incremental arm.
    let (stdout, code) = run_with_stdin(&["bmc", "--bits", "4", "--max-conflicts", "1"], "");
    assert_eq!(code, 0, "{stdout}");
    let time_at = stdout.find("c time").expect("time line printed");
    let warm_at = stdout
        .find("c warm engine")
        .expect("warm-engine line printed");
    let verdict_at = stdout.find("s UNKNOWN").expect("verdict printed");
    assert!(stdout.contains("total conflicts"), "{stdout}");
    assert!(time_at < verdict_at, "summary before verdict: {stdout}");
    assert!(warm_at < verdict_at, "summary before verdict: {stdout}");

    // Scratch arm.
    let (stdout, code) = run_with_stdin(
        &["bmc", "--bits", "4", "--max-conflicts", "1", "--scratch"],
        "",
    );
    assert_eq!(code, 0, "{stdout}");
    let time_at = stdout.find("c time").expect("time line printed");
    let verdict_at = stdout.find("s UNKNOWN").expect("verdict printed");
    assert!(time_at < verdict_at, "summary before verdict: {stdout}");
    assert!(stdout.contains("stopped at depth"), "{stdout}");
}

#[test]
fn verbose_flag_prints_restart_annotations() {
    // hole(6) restarts at least once under the default interval; each
    // restart prints a `-v` annotation. Without -v, no such line appears.
    let dimacs = pigeonhole_dimacs(6);
    let (stdout, code) = run_with_stdin(&["-v", "--no-model"], &dimacs);
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("restart 1 at conflict"), "{stdout}");

    let (stdout, _) = run_with_stdin(&["--no-model"], &dimacs);
    assert!(!stdout.contains("restart 1 at conflict"), "{stdout}");
}

#[test]
fn workers_line_reports_eviction_and_miss_counters() {
    let (stdout, code) = run_with_stdin(
        &["--engine", "portfolio", "--threads", "2", "--deterministic"],
        &pigeonhole_dimacs(5),
    );
    assert_eq!(code, 20, "{stdout}");
    let workers = stdout
        .lines()
        .find(|l| l.starts_with("c workers"))
        .expect("worker summary line");
    assert!(workers.contains("evicted"), "{workers}");
    assert!(workers.contains("missed"), "{workers}");
}

#[test]
fn paranoid_flag_is_accepted_and_solves_normally() {
    let (stdout, code) = run_with_stdin(&["--paranoid"], "p cnf 2 2\n1 -2 0\n2 0\n");
    assert_eq!(code, 10, "{stdout}");
    assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
    let (stdout, code) = run_with_stdin(
        &["--paranoid", "--check-proof", "--no-model"],
        "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n",
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("proof checked"), "{stdout}");
}
