//! End-to-end tests of the `berkmin-cli` binary: DIMACS in, SAT-competition
//! output and exit codes out, DRAT proof emission and self-checking.

use std::io::Write;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_berkmin-cli"))
}

fn run_with_stdin(args: &[&str], input: &str) -> (String, i32) {
    let mut child = cli()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn berkmin-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("cli runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn sat_instance_reports_model_and_exit_10() {
    let (stdout, code) = run_with_stdin(&[], "p cnf 2 2\n1 -2 0\n2 0\n");
    assert_eq!(code, 10);
    assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
    assert!(stdout.contains("v 1 2 0"), "model line expected: {stdout}");
}

#[test]
fn unsat_instance_reports_exit_20_with_checked_proof() {
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(&["--check-proof"], dimacs);
    assert_eq!(code, 20);
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    assert!(stdout.contains("proof checked"), "{stdout}");
}

#[test]
fn proof_file_is_written_and_parseable() {
    let dir = std::env::temp_dir().join(format!("berkmin_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let proof_path = dir.join("out.drat");
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (_, code) = run_with_stdin(
        &["--proof", proof_path.to_str().unwrap(), "--quiet"],
        dimacs,
    );
    assert_eq!(code, 20);
    let text = std::fs::read_to_string(&proof_path).expect("proof written");
    let proof = berkmin_drat::DratProof::parse(&text).expect("proof parses");
    assert!(proof.ends_with_empty_clause());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_on_budget_exit_0() {
    // Pigeonhole with 1-conflict budget.
    let mut dimacs = String::from("p cnf 12 22\n");
    // 4 pigeons, 3 holes: var = p*3 + h + 1.
    for p in 0..4 {
        for h in 0..3 {
            dimacs.push_str(&format!("{} ", p * 3 + h + 1));
        }
        dimacs.push_str("0\n");
    }
    for h in 0..3 {
        for p1 in 0..4 {
            for p2 in (p1 + 1)..4 {
                dimacs.push_str(&format!("-{} -{} 0\n", p1 * 3 + h + 1, p2 * 3 + h + 1));
            }
        }
    }
    let (stdout, code) = run_with_stdin(&["--max-conflicts", "1", "--no-model"], &dimacs);
    assert_eq!(code, 0);
    assert!(stdout.contains("s UNKNOWN"), "{stdout}");
}

#[test]
fn config_presets_are_selectable() {
    for cfg in ["berkmin", "chaff", "limmat", "less-mobility"] {
        let (stdout, code) = run_with_stdin(&["--config", cfg], "p cnf 1 1\n1 0\n");
        assert_eq!(code, 10, "config {cfg}");
        assert!(stdout.contains("s SATISFIABLE"), "config {cfg}: {stdout}");
    }
}

#[test]
fn malformed_input_exits_2() {
    let (_, code) = run_with_stdin(&["--quiet"], "p cnf x y\n");
    assert_eq!(code, 2);
}

#[test]
fn bmc_subcommand_incremental_and_scratch_agree_on_depth() {
    // The enabled 3-bit counter first shows all-ones at depth 7; both modes
    // must find it and exit with the SAT code.
    for extra in [&[][..], &["--scratch"][..]] {
        let mut args = vec!["bmc", "--bits", "3"];
        args.extend_from_slice(extra);
        let (stdout, code) = run_with_stdin(&args, "");
        assert_eq!(code, 10, "args {args:?}: {stdout}");
        assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
        assert!(
            stdout.contains("first reachable at depth 7"),
            "args {args:?}: {stdout}"
        );
    }
}

#[test]
fn bmc_subcommand_reports_unreachable_within_short_bound() {
    let (stdout, code) = run_with_stdin(&["bmc", "--bits", "3", "--max-depth", "5"], "");
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    assert!(stdout.contains("unreachable within depth 5"), "{stdout}");
}

#[test]
fn bmc_subcommand_budget_abort_reports_unknown() {
    let (stdout, code) = run_with_stdin(&["bmc", "--bits", "4", "--max-conflicts", "1"], "");
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("s UNKNOWN"), "{stdout}");
    assert!(stdout.contains("conflict budget exhausted"), "{stdout}");
}

#[test]
fn empty_formula_p_cnf_0_0_is_sat_with_empty_model_line() {
    // The degenerate "p cnf 0 0" input: SAT, a bare "v 0" model line, and
    // the SAT-competition exit code — consistent with the library answer.
    let (stdout, code) = run_with_stdin(&[], "p cnf 0 0\n");
    assert_eq!(code, 10, "{stdout}");
    assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
    assert!(
        stdout.contains("v 0"),
        "empty model line expected: {stdout}"
    );
}

#[test]
fn explicit_empty_clause_is_unsat_with_checkable_proof() {
    // A bare "0" clause line is the empty clause: immediately UNSAT, and
    // both the written proof and the self-check must handle it.
    let dir = std::env::temp_dir().join(format!("berkmin_cli_empty_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let proof_path = dir.join("empty.drat");
    let dimacs = "p cnf 2 2\n1 2 0\n0\n";
    let (stdout, code) = run_with_stdin(
        &["--check-proof", "--proof", proof_path.to_str().unwrap()],
        dimacs,
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    let text = std::fs::read_to_string(&proof_path).expect("proof written");
    let proof = berkmin_drat::DratProof::parse(&text).expect("proof parses");
    assert!(proof.ends_with_empty_clause(), "proof: {text:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_reserved_vars_without_clauses_get_a_full_model() {
    // "p cnf 4 0": no constraints, but the model must still assign all
    // four header-reserved variables.
    let (stdout, code) = run_with_stdin(&[], "p cnf 4 0\n");
    assert_eq!(code, 10, "{stdout}");
    let model_line = stdout
        .lines()
        .find(|l| l.starts_with("v "))
        .expect("model line");
    let vals: Vec<i32> = model_line[2..]
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(vals.len(), 5, "4 vars + terminator: {model_line}");
    assert_eq!(*vals.last().unwrap(), 0);
    for v in 1..=4i32 {
        assert!(
            vals.contains(&v) || vals.contains(&-v),
            "variable {v} missing from model: {model_line}"
        );
    }
}

#[test]
fn portfolio_engine_solves_sat_and_unsat_with_worker_summary() {
    // Deterministic two-worker portfolio: verdicts match the single-threaded
    // answer and the worker summary line names the winner.
    let unsat = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(
        &["--engine", "portfolio", "--threads", "2", "--deterministic"],
        unsat,
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("s UNSATISFIABLE"), "{stdout}");
    let workers = stdout
        .lines()
        .find(|l| l.starts_with("c workers"))
        .expect("worker summary line");
    assert!(workers.contains("winner"), "{workers}");
    assert!(workers.contains("exported"), "{workers}");

    let (stdout, code) = run_with_stdin(
        &["--engine", "portfolio", "--threads", "2", "--deterministic"],
        "p cnf 2 2\n1 -2 0\n2 0\n",
    );
    assert_eq!(code, 10, "{stdout}");
    assert!(stdout.contains("v 1 2 0"), "{stdout}");
}

#[test]
fn portfolio_rejects_proof_logging_while_sharing_is_on() {
    // A DRAT proof of a sharing portfolio would be unsound (imported clauses
    // are not RUP-derivable in the importer's log) — the CLI must refuse the
    // combination up front instead of emitting a bogus proof.
    let mut child = cli()
        .args(["--engine", "portfolio", "--check-proof"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn berkmin-cli");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"p cnf 1 2\n1 0\n-1 0\n")
        .unwrap();
    let out = child.wait_with_output().expect("cli runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("configuration error"), "{stderr}");
}

#[test]
fn portfolio_without_sharing_emits_a_checkable_winner_proof() {
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(
        &[
            "--engine",
            "portfolio",
            "--no-share",
            "--deterministic",
            "--check-proof",
        ],
        dimacs,
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("proof checked"), "{stdout}");
}

#[test]
fn time_line_reports_average_and_max_lbd() {
    let dimacs = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let (stdout, code) = run_with_stdin(&["--no-model"], dimacs);
    assert_eq!(code, 20, "{stdout}");
    let time_line = stdout
        .lines()
        .find(|l| l.starts_with("c time"))
        .expect("time line");
    assert!(time_line.contains("avg lbd"), "{time_line}");
    assert!(time_line.contains("max"), "{time_line}");
}

#[test]
fn paranoid_flag_is_accepted_and_solves_normally() {
    let (stdout, code) = run_with_stdin(&["--paranoid"], "p cnf 2 2\n1 -2 0\n2 0\n");
    assert_eq!(code, 10, "{stdout}");
    assert!(stdout.contains("s SATISFIABLE"), "{stdout}");
    let (stdout, code) = run_with_stdin(
        &["--paranoid", "--check-proof", "--no-model"],
        "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n",
    );
    assert_eq!(code, 20, "{stdout}");
    assert!(stdout.contains("proof checked"), "{stdout}");
}
