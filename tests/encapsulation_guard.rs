//! Guards the Solver decomposition: the assignment state lives in
//! `Trail`, the watched-literal indexes in `Watches`, and both keep every
//! field private — the rest of the solver goes through their methods, so
//! each subsystem's invariants are enforced at one narrow interface. A
//! refactor that reopens a field as `pub(crate)` (or grows `solver.rs`
//! back into a god-object) fails here instead of rotting silently.
//!
//! The assertions are comment-anchored: `crates/core/src/trail.rs` and
//! `crates/core/src/watch.rs` carry `encapsulation-guard:` marker comments
//! pointing back at this file.

use std::fs;
use std::path::{Path, PathBuf};

fn core_src(file: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/core/src")
        .join(file);
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    (path, text)
}

/// Strips `//`-comments and string literals well enough for the raw-access
/// scans below (doc comments routinely *mention* field names).
fn code_only(text: &str) -> String {
    text.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn trail_fields_stay_private() {
    let (path, text) = core_src("trail.rs");
    assert!(
        text.contains("encapsulation-guard:"),
        "{} lost its marker comment linking back to tests/encapsulation_guard.rs",
        path.display()
    );
    // Each state table must be declared without any `pub` qualifier.
    for field in [
        "    assigns: Vec<LBool>,",
        "    level: Vec<u32>,",
        "    reason: Vec<Option<ClauseRef>>,",
        "    trail: Vec<Lit>,",
        "    trail_lim: Vec<usize>,",
        "    qhead: usize,",
    ] {
        assert!(
            text.contains(field),
            "trail.rs no longer declares `{}` as a private field — the \
             Trail owns the assignment state behind its methods; reopening \
             a field breaks the subsystem's invariant boundary",
            field.trim()
        );
    }
}

#[test]
fn watch_fields_stay_private() {
    let (path, text) = core_src("watch.rs");
    assert!(
        text.contains("encapsulation-guard:"),
        "{} lost its marker comment linking back to tests/encapsulation_guard.rs",
        path.display()
    );
    for field in [
        "    long: Vec<Vec<Watcher>>,",
        "    binary: Vec<Vec<BinWatcher>>,",
    ] {
        assert!(
            text.contains(field),
            "watch.rs no longer declares `{}` as a private field — the \
             Watches own the 2WL indexes behind attach/detach/rebuild",
            field.trim()
        );
    }
}

#[test]
fn no_module_bypasses_the_trail_or_watch_interfaces() {
    // Raw accessor spellings of the pre-decomposition Solver fields. Any
    // file outside the owning subsystem reaching for them has bypassed the
    // typed interface.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src");
    let mut stack = vec![dir];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).expect("readable source dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if !name.ends_with(".rs") || name == "trail.rs" || name == "watch.rs" {
                continue;
            }
            let text = code_only(&fs::read_to_string(&path).expect("readable source file"));
            for forbidden in [
                ".assigns",
                ".trail_lim",
                ".qhead",
                ".bin_watches",
                ".watches[",
                ".trail[",
            ] {
                assert!(
                    !text.contains(forbidden),
                    "{} reaches around the subsystem API with `{forbidden}` — \
                     go through Trail/Watches methods instead",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn solver_facade_stays_thin() {
    let (path, text) = core_src("solver.rs");
    let lines = text.lines().count();
    assert!(
        lines < 520,
        "{} has grown to {lines} lines — the facade holds construction, \
         clause ingestion and session plumbing only; search logic belongs \
         in search.rs and state logic in its subsystem module",
        path.display()
    );
}
