//! Property tests across the circuit → CNF → solver pipeline: the solver's
//! view of a circuit must agree with bit-parallel simulation, and Tseitin
//! encodings must be exactly equisatisfiable with the circuit semantics.

use berkmin_circuit::random::{random_circuit, RandomCircuitSpec};
use berkmin_circuit::rewrite::restructure;
use berkmin_circuit::{encode, eval64, miter_cnf};
use berkmin_suite::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forcing a random circuit's output to a simulated value is SAT; the
    /// returned model reproduces a consistent input pattern.
    #[test]
    fn output_justification_matches_simulation(
        seed in 0u64..10_000,
        gates in 20usize..120,
        pattern in any::<u64>(),
    ) {
        let spec = RandomCircuitSpec {
            inputs: 8,
            gates,
            outputs: 4,
            window: 16,
            seed,
        };
        let circuit = random_circuit(&spec);
        // Simulate one concrete pattern.
        let words: Vec<u64> = (0..8).map(|i| if pattern >> i & 1 == 1 { u64::MAX } else { 0 }).collect();
        let outs = eval64(&circuit, &words);
        // Ask the solver to justify exactly those outputs.
        let mut enc = encode(&circuit);
        for (o, word) in outs.iter().enumerate() {
            enc.constrain_output(o, word & 1 == 1);
        }
        let mut solver = Solver::new(&enc.cnf, SolverConfig::berkmin());
        let status = solver.solve();
        let model = status.model().expect("simulated pattern is a witness");
        prop_assert!(enc.cnf.is_satisfied_by(model));
        // The model's input pattern must reproduce the same outputs.
        let model_words: Vec<u64> = enc
            .input_vars
            .iter()
            .map(|v| if model.value(*v) == LBool::True { u64::MAX } else { 0 })
            .collect();
        let model_outs = eval64(&circuit, &model_words);
        for (o, (a, b)) in outs.iter().zip(&model_outs).enumerate() {
            prop_assert_eq!(a & 1, b & 1, "output {} differs", o);
        }
    }

    /// Restructuring never changes the function: the miter is always UNSAT,
    /// confirmed by the solver (not just by simulation).
    #[test]
    fn restructure_miters_are_unsat(seed in 0u64..10_000, gates in 20usize..100) {
        let spec = RandomCircuitSpec {
            inputs: 10,
            gates,
            outputs: 5,
            window: 14,
            seed,
        };
        let c = random_circuit(&spec);
        let c2 = restructure(&c, seed ^ 0xDEAD);
        let cnf = miter_cnf(&c, &c2);
        let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
        prop_assert!(solver.solve().is_unsat());
    }

    /// The solver-found distinguishing input of an inequivalent pair really
    /// distinguishes them under simulation.
    #[test]
    fn counterexamples_replay_in_simulation(seed in 0u64..5_000) {
        let spec = RandomCircuitSpec {
            inputs: 6,
            gates: 40,
            outputs: 3,
            window: 10,
            seed,
        };
        let c = random_circuit(&spec);
        if let Some((buggy, _)) = berkmin_circuit::rewrite::inject_fault(&c, seed) {
            let mut enc = berkmin_circuit::miter_encoding(&c, &buggy);
            enc.constrain_output(0, true);
            let mut solver = Solver::new(&enc.cnf, SolverConfig::berkmin());
            if let SolveStatus::Sat(model) = solver.solve() {
                let words: Vec<u64> = enc
                    .input_vars
                    .iter()
                    .map(|v| if model.value(*v) == LBool::True { u64::MAX } else { 0 })
                    .collect();
                let a = eval64(&c, &words);
                let b = eval64(&buggy, &words);
                prop_assert!(
                    a.iter().zip(&b).any(|(x, y)| (x ^ y) & 1 == 1),
                    "solver counterexample does not replay"
                );
            }
            // UNSAT is also fine: the fault was masked.
        }
    }
}
