//! Cross-configuration agreement: every named configuration of the paper
//! must reach the same verdict on the same formula — they differ only in
//! heuristics, never in soundness.
//!
//! Every solver here is assembled by `SolverBuilder` and driven through
//! `dyn SatEngine`, so this suite doubles as the proof that the whole
//! comparison harness needs nothing beyond the object-safe session API.

use berkmin::{RestartPolicy, SolverConfig, TopClausePolarity};
use berkmin_gens::*;
use berkmin_suite::prelude::*;

/// Builds the configured engine pre-loaded with `cnf`, as a trait object.
fn engine_for(cnf: &Cnf, cfg: SolverConfig) -> Box<dyn SatEngine> {
    SolverBuilder::with_config(cfg).cnf(cnf).build_engine()
}

/// Stages `assumptions` and runs one solve call on any engine.
fn solve_under(engine: &mut dyn SatEngine, assumptions: &[Lit]) -> SolveStatus {
    for &a in assumptions {
        engine.assume(a);
    }
    engine.solve()
}

fn paper_configs() -> Vec<(&'static str, SolverConfig)> {
    vec![
        ("berkmin", SolverConfig::berkmin()),
        ("less_sensitivity", SolverConfig::less_sensitivity()),
        ("less_mobility", SolverConfig::less_mobility()),
        (
            "sat_top",
            SolverConfig::with_top_polarity(TopClausePolarity::SatTop),
        ),
        (
            "unsat_top",
            SolverConfig::with_top_polarity(TopClausePolarity::UnsatTop),
        ),
        (
            "take_0",
            SolverConfig::with_top_polarity(TopClausePolarity::Take0),
        ),
        (
            "take_1",
            SolverConfig::with_top_polarity(TopClausePolarity::Take1),
        ),
        (
            "take_rand",
            SolverConfig::with_top_polarity(TopClausePolarity::TakeRand),
        ),
        ("limited_keeping", SolverConfig::limited_keeping()),
        ("chaff_like", SolverConfig::chaff_like()),
        ("limmat_like", SolverConfig::limmat_like()),
    ]
}

fn check_pool(pool: &[BenchInstance]) {
    for inst in pool {
        let mut verdicts: Vec<(String, bool)> = Vec::new();
        for (name, cfg) in paper_configs() {
            // Each configuration runs the sweep twice: preprocessing fully
            // off and fully on (subsumption, strengthening, elimination) —
            // the simplifier must never move any arm's verdict.
            for (tag, simplify) in [
                ("simplify-off", SimplifyConfig::off()),
                ("simplify-full", SimplifyConfig::full()),
            ] {
                let arm = format!("{name}/{tag}");
                let mut solver = engine_for(&inst.cnf, cfg.clone().with_simplify(simplify));
                match solver.solve() {
                    SolveStatus::Sat(m) => {
                        assert!(inst.cnf.is_satisfied_by(&m), "{arm} on {}", inst.name);
                        verdicts.push((arm, true));
                    }
                    SolveStatus::Unsat => verdicts.push((arm, false)),
                    SolveStatus::Unknown(r) => {
                        panic!("{arm} on {}: aborted without budget: {r}", inst.name)
                    }
                }
            }
        }
        let first = verdicts[0].1;
        for (name, v) in &verdicts {
            assert_eq!(*v, first, "{name} disagrees on {}", inst.name);
        }
        if let Some(expected) = inst.expected {
            assert_eq!(first, expected, "all solvers wrong on {}?!", inst.name);
        }
    }
}

#[test]
fn all_configs_agree_on_circuit_instances() {
    check_pool(&[
        miters::equivalent_miter(60, 20, 3),
        miters::buggy_miter(60, 20, 3),
        miters::multiplier_miter(4, 2),
        pipeline::sss_check(3, false, 5),
        pipeline::sss_check(3, true, 5),
    ]);
}

#[test]
fn all_configs_agree_on_combinatorial_instances() {
    check_pool(&[
        hole::pigeonhole(5),
        parity::parity_learning(10, 14, 2),
        parity::parity_unsat(9, 2),
        ksat::planted_ksat(30, 126, 3, 2),
        ksat::xor_unsat(12, 14, 2),
    ]);
}

#[test]
fn all_configs_agree_on_planning_and_bmc_instances() {
    check_pool(&[
        hanoi::hanoi(3),
        hanoi::hanoi_unsat(3),
        blocksworld::blocksworld(4, 4, 9),
        bmc_gen::bmc_counter_enable(3),
        bmc_gen::bmc_counter_enable_unsat(3),
    ]);
}

#[test]
fn berkmin_and_chaff_agree_on_fifty_random_3sat_instances() {
    // Smoke sweep: 50 uniform-random 3-SAT instances straddling the phase
    // transition (m/n from ~3.5 to ~5.0, so both verdicts occur). The
    // BerkMin and Chaff-like configurations must agree on every one, and
    // every SAT model must actually satisfy its formula.
    let (mut sat_seen, mut unsat_seen) = (0u32, 0u32);
    for seed in 0..50u64 {
        let n = 24;
        let m = 84 + (seed as usize % 5) * 9; // 84..=120 clauses
        let inst = ksat::random_ksat(n, m, 3, seed);
        let verdicts: Vec<bool> = [SolverConfig::berkmin(), SolverConfig::chaff_like()]
            .into_iter()
            .map(|cfg| {
                let mut solver = engine_for(&inst.cnf, cfg);
                match solver.solve() {
                    SolveStatus::Sat(model) => {
                        assert!(
                            inst.cnf.is_satisfied_by(&model),
                            "bad model on {} (seed {seed})",
                            inst.name
                        );
                        true
                    }
                    SolveStatus::Unsat => false,
                    SolveStatus::Unknown(r) => {
                        panic!("{}: aborted without budget: {r}", inst.name)
                    }
                }
            })
            .collect();
        assert_eq!(
            verdicts[0], verdicts[1],
            "BerkMin and Chaff-like disagree on {} (seed {seed})",
            inst.name
        );
        if verdicts[0] {
            sat_seen += 1;
        } else {
            unsat_seen += 1;
        }
    }
    // The sweep only exercises agreement if both verdicts actually occur.
    assert!(sat_seen > 0, "sweep never produced a SAT instance");
    assert!(unsat_seen > 0, "sweep never produced an UNSAT instance");
}

#[test]
fn berkmin_and_chaff_agree_under_random_assumption_sets() {
    // Assumption sweep: for random 3-SAT instances near the phase
    // transition, the BerkMin and Chaff-like configurations must agree on
    // SAT/UNSAT under every random assumption set, each warm solver
    // carrying its learnt clauses across the per-instance queries. SAT
    // models must honor the assumptions; UNSAT cores must be subsets of
    // the assumptions that are themselves UNSAT-forcing.
    let (mut sat_seen, mut unsat_seen) = (0u32, 0u32);
    for seed in 0..12u64 {
        let n = 20;
        let m = 70 + (seed as usize % 5) * 7; // straddle the transition
        let inst = ksat::random_ksat(n, m, 3, seed);
        let mut berkmin_solver = engine_for(&inst.cnf, SolverConfig::berkmin());
        let mut chaff_solver = engine_for(&inst.cnf, SolverConfig::chaff_like());
        for round in 0..4u64 {
            // Deterministic pseudo-random assumption set, 1..=3 literals.
            let mut x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(round + 1);
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let count = 1 + (next() % 3) as usize;
            let assumptions: Vec<Lit> = (0..count)
                .map(|_| {
                    let v = (next() % n as u64) as u32;
                    Lit::new(Var::new(v), next() & 1 == 0)
                })
                .collect();
            let verdicts: Vec<bool> = [
                (&mut berkmin_solver, "berkmin"),
                (&mut chaff_solver, "chaff"),
            ]
            .into_iter()
            .map(
                |(solver, name)| match solve_under(solver.as_mut(), &assumptions) {
                    SolveStatus::Sat(model) => {
                        assert!(inst.cnf.is_satisfied_by(&model), "{name} bad model");
                        for &a in &assumptions {
                            assert!(model.satisfies(a), "{name} ignored assumption {a:?}");
                        }
                        true
                    }
                    SolveStatus::Unsat => {
                        for &c in solver.failed_assumptions() {
                            assert!(
                                assumptions.contains(&c),
                                "{name} core literal {c:?} not among assumptions"
                            );
                        }
                        let core = solver.failed_assumptions().to_vec();
                        assert!(
                            solve_under(solver.as_mut(), &core).is_unsat(),
                            "{name} core is not UNSAT-forcing"
                        );
                        false
                    }
                    SolveStatus::Unknown(r) => {
                        panic!("{name} on {} aborted without budget: {r}", inst.name)
                    }
                },
            )
            .collect();
            assert_eq!(
                verdicts[0], verdicts[1],
                "configs disagree on {} (seed {seed}, round {round}, {assumptions:?})",
                inst.name
            );
            if verdicts[0] {
                sat_seen += 1;
            } else {
                unsat_seen += 1;
            }
        }
    }
    assert!(sat_seen > 0, "sweep never produced a SAT query");
    assert!(unsat_seen > 0, "sweep never produced an UNSAT query");
}

/// Builds a deterministic two-worker portfolio engine pre-loaded with `cnf`.
///
/// Deterministic mode runs the workers as round-robin conflict slices on the
/// calling thread, so the sweep is reproducible and cheap enough to run over
/// the whole instance pool — with sharing on and off.
fn portfolio_for(cnf: &Cnf, share_lbd: Option<u32>) -> PortfolioEngine {
    let config = PortfolioConfig::new(2)
        .with_share_lbd(share_lbd)
        .with_deterministic(true);
    let mut engine = PortfolioEngine::new(config);
    engine.reserve_vars(cnf.num_vars());
    for clause in cnf.iter() {
        engine.add_clause(clause.lits());
    }
    engine
}

#[test]
fn portfolio_agrees_with_single_threaded_berkmin_on_the_instance_pool() {
    // The portfolio must reach exactly the verdict single-threaded BerkMin
    // reaches, on every pooled instance, whether clause sharing is on or
    // off — sharing may only move work around, never change answers.
    let pool = [
        miters::equivalent_miter(60, 20, 3),
        miters::buggy_miter(60, 20, 3),
        hole::pigeonhole(5),
        parity::parity_unsat(9, 2),
        ksat::planted_ksat(30, 126, 3, 2),
        ksat::xor_unsat(12, 14, 2),
        hanoi::hanoi(3),
        blocksworld::blocksworld(4, 4, 9),
        bmc_gen::bmc_counter_enable(3),
        bmc_gen::bmc_counter_enable_unsat(3),
    ];
    for inst in &pool {
        let reference = engine_for(&inst.cnf, SolverConfig::berkmin())
            .solve()
            .is_sat();
        for share in [Some(4u32), None] {
            let mut portfolio = portfolio_for(&inst.cnf, share);
            match portfolio.solve() {
                SolveStatus::Sat(model) => {
                    assert!(
                        inst.cnf.is_satisfied_by(&model),
                        "portfolio model wrong on {} (share {share:?})",
                        inst.name
                    );
                    assert!(
                        reference,
                        "portfolio SAT but berkmin UNSAT on {} (share {share:?})",
                        inst.name
                    );
                }
                SolveStatus::Unsat => assert!(
                    !reference,
                    "portfolio UNSAT but berkmin SAT on {} (share {share:?})",
                    inst.name
                ),
                SolveStatus::Unknown(r) => {
                    panic!("portfolio aborted without budget on {}: {r}", inst.name)
                }
            }
            if let Some(expected) = inst.expected {
                assert_eq!(reference, expected, "reference wrong on {}?!", inst.name);
            }
        }
    }
}

#[test]
fn portfolio_agrees_on_random_3sat_with_and_without_sharing() {
    // Random 3-SAT across the phase transition: single-threaded BerkMin vs
    // the deterministic two-worker portfolio, sharing on and off. Both
    // verdicts must occur over the sweep for it to mean anything.
    let (mut sat_seen, mut unsat_seen) = (0u32, 0u32);
    for seed in 0..20u64 {
        let n = 22;
        let m = 77 + (seed as usize % 5) * 8; // straddle the transition
        let inst = ksat::random_ksat(n, m, 3, seed);
        let reference = engine_for(&inst.cnf, SolverConfig::berkmin())
            .solve()
            .is_sat();
        for share in [Some(4u32), None] {
            let mut portfolio = portfolio_for(&inst.cnf, share);
            let verdict = match portfolio.solve() {
                SolveStatus::Sat(model) => {
                    assert!(
                        inst.cnf.is_satisfied_by(&model),
                        "bad portfolio model on {} (seed {seed})",
                        inst.name
                    );
                    true
                }
                SolveStatus::Unsat => false,
                SolveStatus::Unknown(r) => {
                    panic!("{} (seed {seed}): aborted without budget: {r}", inst.name)
                }
            };
            assert_eq!(
                verdict, reference,
                "portfolio disagrees on {} (seed {seed}, share {share:?})",
                inst.name
            );
        }
        if reference {
            sat_seen += 1;
        } else {
            unsat_seen += 1;
        }
    }
    assert!(sat_seen > 0, "sweep never produced a SAT instance");
    assert!(unsat_seen > 0, "sweep never produced an UNSAT instance");
}

#[test]
fn restart_policies_never_change_verdicts() {
    let instances = [hole::pigeonhole(5), parity::parity_learning(10, 14, 7)];
    for inst in &instances {
        let mut verdicts = Vec::new();
        for restart in [
            RestartPolicy::Never,
            RestartPolicy::FixedInterval(3),
            RestartPolicy::FixedInterval(550),
            RestartPolicy::Luby(2),
        ] {
            let mut cfg = SolverConfig::berkmin();
            cfg.restart = restart;
            let mut solver = engine_for(&inst.cnf, cfg);
            verdicts.push(solver.solve().is_sat());
        }
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{}", inst.name);
    }
}

#[test]
fn minimization_extension_preserves_verdicts_and_shortens_clauses() {
    let inst = hole::pigeonhole(6);
    let mut plain_cfg = SolverConfig::berkmin();
    plain_cfg.restart = RestartPolicy::Never; // isolate the learning effect
    let mut min_cfg = plain_cfg.clone();
    min_cfg.minimize_learnt = true;

    let mut plain = engine_for(&inst.cnf, plain_cfg);
    let mut minimized = engine_for(&inst.cnf, min_cfg);
    assert!(plain.solve().is_unsat());
    assert!(minimized.solve().is_unsat());
    // Minimization must not lengthen the average learnt clause.
    assert!(
        minimized.stats().avg_learnt_len() <= plain.stats().avg_learnt_len() + 1e-9,
        "minimized {:.2} vs plain {:.2}",
        minimized.stats().avg_learnt_len(),
        plain.stats().avg_learnt_len()
    );
}
