//! DIMACS interop: generated instances survive serialization, and solving
//! the reparsed formula gives the same verdict — the path an external user
//! of the DIMACS files would take.

use berkmin_cnf::dimacs;
use berkmin_gens::*;
use berkmin_suite::prelude::*;

fn roundtrip_and_compare(inst: &BenchInstance) {
    let text = dimacs::to_string(&inst.cnf);
    let parsed = dimacs::parse(&text).expect("generated DIMACS must parse");
    assert_eq!(parsed.num_vars(), inst.cnf.num_vars(), "{}", inst.name);
    assert_eq!(parsed.clauses(), inst.cnf.clauses(), "{}", inst.name);

    let mut original = Solver::new(&inst.cnf, SolverConfig::berkmin());
    let mut reparsed = Solver::new(&parsed, SolverConfig::berkmin());
    assert_eq!(
        original.solve().is_sat(),
        reparsed.solve().is_sat(),
        "{}: verdict changed across DIMACS round-trip",
        inst.name
    );
}

#[test]
fn all_families_roundtrip_through_dimacs() {
    let pool = vec![
        hole::pigeonhole(4),
        parity::parity_learning(8, 12, 1),
        hanoi::hanoi(2),
        blocksworld::blocksworld(3, 3, 1),
        beijing::adder_unsat(6),
        miters::multiplier_miter(3, 1),
        pipeline::sss_check(3, true, 7),
        ksat::planted_ksat(20, 80, 3, 3),
        bmc_gen::bmc_counter_enable(3),
    ];
    for inst in &pool {
        roundtrip_and_compare(inst);
    }
}

#[test]
fn dimacs_comments_carry_provenance() {
    let inst = hole::pigeonhole(4);
    let text = dimacs::to_string(&inst.cnf);
    assert!(text.starts_with("c "), "comment header expected:\n{text}");
    assert!(text.contains("pigeonhole"));
}

#[test]
fn solver_accepts_foreign_dimacs_quirks() {
    // Multi-line clauses, missing trailing newline, '%' terminator.
    let text = "c quirky\np cnf 4 3\n1 2\n3 0 -1\n-2 0\n4 -3 0\n%";
    let cnf = dimacs::parse(text).expect("tolerant parser");
    let mut solver = Solver::new(&cnf, SolverConfig::berkmin());
    assert!(solver.solve().is_sat());
}
