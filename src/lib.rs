//! # berkmin-suite — facade over the BerkMin reproduction workspace
//!
//! One `use` away from everything: the solver ([`berkmin`]), the CNF
//! vocabulary ([`berkmin_cnf`]), the circuit substrate
//! ([`berkmin_circuit`]), the benchmark generators ([`berkmin_gens`]) and
//! the proof machinery ([`berkmin_drat`]).
//!
//! See the workspace README for the tour, DESIGN.md for the system
//! inventory, and EXPERIMENTS.md for the paper-vs-measured record.
//!
//! # Example
//!
//! The session flow: assemble an engine with the builder, then drive it —
//! `assume()` stages per-call assumptions, `solve()` is the one entry
//! point.
//!
//! ```
//! use berkmin_suite::prelude::*;
//!
//! // Equivalence-check two adder architectures with the solver.
//! let ripple = berkmin_circuit::arith::ripple_carry_adder(6);
//! let carry_select = berkmin_circuit::arith::carry_select_adder(6, 2);
//! let cnf = berkmin_circuit::miter_cnf(&ripple, &carry_select);
//! let mut solver = SolverBuilder::with_config(SolverConfig::berkmin())
//!     .cnf(&cnf)
//!     .build();
//! assert!(solver.solve().is_unsat()); // equivalent ⇒ miter unsatisfiable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use berkmin;
pub use berkmin_circuit;
pub use berkmin_cnf;
pub use berkmin_drat;
pub use berkmin_gens;

/// The handful of names almost every user wants in scope — centered on
/// the session API: [`SolverBuilder`](berkmin::SolverBuilder) assembles an
/// engine, [`SatEngine`](berkmin::SatEngine) is the trait drivers program
/// against, and [`ClauseSink`](berkmin_cnf::ClauseSink) streams DIMACS
/// straight into it.
pub mod prelude {
    pub use berkmin::{
        Budget, PortfolioConfig, PortfolioEngine, ProofSink, SatEngine, SimplifyConfig, SolveEvent,
        SolveObserver, SolveStatus, SolveVerdict, Solver, SolverBuilder, SolverConfig, Stats,
        StatsSnapshot, StopReason, WorkerOutcome, WorkerReport,
    };
    pub use berkmin_circuit::bmc::{BmcDriver, BmcEncoding, BmcOutcome};
    pub use berkmin_cnf::{Assignment, Clause, ClauseSink, Cnf, LBool, Lit, Var};
    pub use berkmin_drat::{check_refutation, DratProof};
    pub use berkmin_gens::BenchInstance;
}

// Compile (and run) the README's code blocks as doctests, so the
// "Incremental solving" walkthrough can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}
