//! Command-line front end: solve a DIMACS CNF file with any of the paper's
//! solver configurations, optionally emitting and self-checking a DRAT
//! proof — or run an incremental bounded-model-checking sweep with the
//! `bmc` subcommand. Output follows the SAT-competition conventions
//! (`c` comments, `s` status, `v` model lines wrapped at 78 columns).
//!
//! Both subcommands drive the solver exclusively through the session API:
//! the engine is assembled by a `SolverBuilder` (proof sink attached at
//! construction) and used as a `Box<dyn SatEngine>`, and plain solving
//! streams the DIMACS input straight into the engine's clause database —
//! no intermediate `Cnf` is materialized (the only exception is
//! `--check-proof`, which must retain the original formula for the
//! independent RUP checker).
//!
//! ```text
//! usage: berkmin-cli [OPTIONS] [FILE]
//!        berkmin-cli bmc [OPTIONS]
//!
//!   FILE                   DIMACS CNF file ('-' or absent = stdin)
//!   --engine NAME          berkmin | chaff | limmat | less-sensitivity |
//!                          less-mobility | limited-keeping | portfolio
//!                          (default: berkmin)
//!   --config NAME          alias of --engine (kept for compatibility)
//!   --threads N            portfolio worker count (default 4)
//!   --share-lbd K          portfolio: share learnt clauses with
//!                          len ≤ 2 or LBD ≤ K (default 4)
//!   --no-share             portfolio: disable clause sharing (required
//!                          for --proof/--check-proof)
//!   --deterministic        portfolio: fixed round-robin schedule on one
//!                          thread (reproducible winner and statistics)
//!   --max-conflicts N      abort after N conflicts
//!   --seed N               heuristic PRNG seed (single engines; portfolio
//!                          workers derive their own diversified seeds)
//!   --no-simplify          disable preprocessing (subsumption runs by
//!                          default at the first solve; the portfolio
//!                          simplifies once before diversifying)
//!   --elim                 enable bounded variable elimination (SAT models
//!                          are reconstructed over eliminated variables;
//!                          proofs carry the elimination additions and
//!                          deletions)
//!   --elim-occ-cap N       elimination: skip variables with more than N
//!                          occurrences of either polarity (default 10)
//!   --elim-growth N        elimination: allow at most N extra clauses over
//!                          the number removed (default 0)
//!   --elim-clause-cap N    elimination: skip resolvents longer than N
//!                          literals (default 20; cap flags imply --elim)
//!   --proof FILE           write a DRAT refutation to FILE on UNSAT
//!   --check-proof          verify the proof with the built-in RUP checker
//!   --paranoid             audit solver invariants at every quiescent
//!                          point of the search (slow; panics on violation)
//!   --stats-json FILE      write a machine-readable run summary to FILE
//!                          (verdict, seconds, full stats block; per-worker
//!                          reports for the portfolio) — the emitted JSON is
//!                          parsed back and cross-checked before the process
//!                          exits, so a malformed or lossy file is an
//!                          internal error, never a silent one
//!   -v, --verbose          MiniSat-style progress table (one row per
//!                          progress tick; restarts/reductions annotated;
//!                          worker-tagged rows for the portfolio)
//!   --no-model             suppress the 'v' model lines
//!   --quiet                suppress statistics
//!
//! bmc options (enabled-counter all-ones reachability sweep):
//!   --bits N               counter width (default 3)
//!   --max-depth D          deepest cycle to try (default 2^bits - 1)
//!   --scratch              re-solve every depth from scratch instead of
//!                          reusing one incremental engine (for comparison)
//!   --stats-json FILE      as above, plus a per-depth "depths" array; in
//!                          --scratch mode the stats block carries the
//!                          total conflict count only (no warm engine
//!                          exists to snapshot)
//!   -v, --verbose          as above (incremental mode only)
//! ```
//!
//! Exit codes follow the SAT-competition convention: **10** = SAT,
//! **20** = UNSAT, **0** = unknown (budget or termination), **2** = usage
//! or input error, **3** = internal error (model/proof/stats
//! self-verification failure). The summary lines (`c time …`, warm-engine
//! and worker reports) print on *every* outcome, including unknown — a
//! budget-stopped run still reports where its time went.

use std::cell::RefCell;
use std::fs;
use std::process::ExitCode;
use std::rc::Rc;

use berkmin::telemetry::json::Value as JsonValue;
use berkmin::{
    Budget, PortfolioConfig, PortfolioEngine, SatEngine, SimplifyConfig, SolveEvent, SolveStatus,
    SolveVerdict, SolverBuilder, SolverConfig, Stats, StatsSnapshot, WorkerOutcome,
};
use berkmin_circuit::arith::enabled_counter;
use berkmin_circuit::bmc::{scratch_first_reaching_depth, BmcDriver, BmcOutcome};
use berkmin_cnf::{dimacs, Assignment, ClauseSink, Cnf, LBool, Lit, Var};
use berkmin_drat::{check_refutation, DratProof};

/// The one error-exit path for usage and input problems: message to
/// stderr, exit code 2. (Solver outcomes exit through `main`'s `ExitCode`.)
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    die(
        "usage: berkmin-cli [--engine NAME] [--threads N] [--share-lbd K] [--no-share] \
         [--deterministic] [--max-conflicts N] [--seed N] \
         [--no-simplify] [--elim] [--elim-occ-cap N] [--elim-growth N] \
         [--elim-clause-cap N] \
         [--proof FILE] [--check-proof] [--paranoid] [--stats-json FILE] [--verbose] \
         [--no-model] [--quiet] [FILE]\n\
         \x20      berkmin-cli bmc [--bits N] [--max-depth D] [--engine NAME] \
         [--max-conflicts N] [--seed N] [--no-simplify] [--scratch] [--paranoid] \
         [--stats-json FILE] [--verbose] [--quiet]",
    );
}

/// Maps the `--engine` preset name to its configuration — the one switch
/// behind which every comparison arm hides, since all of them are driven
/// through the same `dyn SatEngine`.
fn config_by_name(name: &str) -> SolverConfig {
    match name {
        "berkmin" => SolverConfig::berkmin(),
        "chaff" => SolverConfig::chaff_like(),
        "limmat" => SolverConfig::limmat_like(),
        "less-sensitivity" => SolverConfig::less_sensitivity(),
        "less-mobility" => SolverConfig::less_mobility(),
        "limited-keeping" => SolverConfig::limited_keeping(),
        "portfolio" => die(
            "the portfolio engine drives plain solving only; bmc needs one \
             warm incremental engine — pick a single-solver preset",
        ),
        other => die(format!("unknown engine {other:?}")),
    }
}

struct Options {
    file: Option<String>,
    config: SolverConfig,
    proof_path: Option<String>,
    check_proof: bool,
    print_model: bool,
    quiet: bool,
    /// `--engine portfolio`: race diversified workers instead of one solver.
    portfolio: bool,
    threads: usize,
    share_lbd: u32,
    no_share: bool,
    deterministic: bool,
    stats_json: Option<String>,
    verbose: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        config: SolverConfig::berkmin(),
        proof_path: None,
        check_proof: false,
        print_model: true,
        quiet: false,
        portfolio: false,
        threads: 4,
        share_lbd: 4,
        no_share: false,
        deterministic: false,
        stats_json: None,
        verbose: false,
    };
    // Simplify tweaks are collected separately and applied after the loop,
    // so `--engine` (which replaces the whole config) cannot clobber them.
    let mut no_simplify = false;
    let mut elim = false;
    let mut elim_occ_cap: Option<usize> = None;
    let mut elim_growth: Option<usize> = None;
    let mut elim_clause_cap: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" | "--config" => {
                let name = args.next().unwrap_or_else(|| usage());
                if name == "portfolio" {
                    opts.portfolio = true;
                } else {
                    opts.portfolio = false;
                    opts.config = config_by_name(&name);
                }
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| (1..=64).contains(&n))
                    .unwrap_or_else(|| usage());
            }
            "--share-lbd" => {
                opts.share_lbd = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.no_share = false;
            }
            "--no-share" => opts.no_share = true,
            "--deterministic" => opts.deterministic = true,
            "--max-conflicts" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.budget = Budget::conflicts(n);
            }
            "--seed" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.seed = n;
            }
            "--no-simplify" => no_simplify = true,
            "--elim" => elim = true,
            "--elim-occ-cap" => {
                elim_occ_cap = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--elim-growth" => {
                elim_growth = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--elim-clause-cap" => {
                elim_clause_cap = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--proof" => opts.proof_path = Some(args.next().unwrap_or_else(|| usage())),
            "--check-proof" => opts.check_proof = true,
            "--paranoid" => opts.config.paranoid = true,
            "--stats-json" => opts.stats_json = Some(args.next().unwrap_or_else(|| usage())),
            "-v" | "--verbose" => opts.verbose = true,
            "--no-model" => opts.print_model = false,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            "-" => opts.file = None,
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    if no_simplify {
        opts.config.simplify = SimplifyConfig::off();
    } else {
        let s = &mut opts.config.simplify;
        // Any elimination cap implies elimination itself.
        s.var_elim = elim
            || elim_occ_cap.is_some()
            || elim_growth.is_some()
            || elim_clause_cap.is_some()
            || s.var_elim;
        if let Some(n) = elim_occ_cap {
            s.elim_occ_cap = n;
        }
        if let Some(n) = elim_growth {
            s.elim_growth = n;
        }
        if let Some(n) = elim_clause_cap {
            s.elim_clause_cap = n;
        }
    }
    opts
}

/// Streaming ingestion target: every clause goes straight into the engine;
/// only when the RUP checker will need the original formula afterwards is
/// a mirror `Cnf` kept alongside.
struct Ingest<'a> {
    engine: &'a mut dyn SatEngine,
    mirror: Option<&'a mut Cnf>,
}

impl ClauseSink for Ingest<'_> {
    fn header(&mut self, num_vars: usize, num_clauses: usize) {
        self.engine.reserve_vars(num_vars);
        if let Some(cnf) = &mut self.mirror {
            cnf.header(num_vars, num_clauses);
        }
    }

    fn clause(&mut self, lits: &[Lit]) {
        self.engine.add_clause(lits);
        if let Some(cnf) = &mut self.mirror {
            cnf.clause(lits);
        }
    }
}

/// The solving backend behind the plain-solve path: either one configured
/// solver behind the trait object, or the concrete portfolio engine (kept
/// concrete so the `c workers` summary can read its per-worker reports).
enum EngineHolder {
    Single(Box<dyn SatEngine>),
    Portfolio(Box<PortfolioEngine>),
}

impl EngineHolder {
    fn as_engine(&mut self) -> &mut dyn SatEngine {
        match self {
            EngineHolder::Single(e) => &mut **e,
            EngineHolder::Portfolio(p) => &mut **p,
        }
    }

    fn stats(&self) -> &berkmin::Stats {
        match self {
            EngineHolder::Single(e) => e.stats(),
            EngineHolder::Portfolio(p) => p.stats(),
        }
    }
}

/// Formats the per-worker portfolio summary: winner id, pool eviction
/// pressure, then each worker's outcome, conflict spend, sharing traffic
/// and how many shared clauses it missed to capacity eviction.
fn workers_line(portfolio: &PortfolioEngine) -> String {
    let mut line = format!("c workers {}", portfolio.reports().len());
    match portfolio.winner() {
        Some(w) => line.push_str(&format!(" winner {w}")),
        None => line.push_str(" winner none"),
    }
    line.push_str(&format!(" evicted {}", portfolio.stats().pool_evicted));
    for r in portfolio.reports() {
        let outcome = match r.outcome {
            WorkerOutcome::Sat => "sat",
            WorkerOutcome::Unsat => "unsat",
            WorkerOutcome::Stopped(_) => "stopped",
        };
        line.push_str(&format!(
            "  w{} {outcome} conflicts {} exported {} imported {} missed {}",
            r.id, r.conflicts, r.exported, r.imported, r.missed
        ));
    }
    line
}

/// The worker name shown in a `-v` table row: blank for the single engine,
/// `wN` under the portfolio.
fn worker_tag(worker: Option<usize>) -> String {
    worker.map(|w| format!("w{w}")).unwrap_or_default()
}

/// The `-v/--verbose` observer: a MiniSat-style progress table, one row
/// per progress tick, with restart/reduction annotations. Portfolio
/// worker events arrive tagged and print under their `wN` label.
fn verbose_observer() -> impl FnMut(&SolveEvent) + Send + 'static {
    let mut header_printed = false;
    move |event: &SolveEvent| {
        let (worker, inner) = match event {
            SolveEvent::Worker { worker, event } => (Some(*worker), &**event),
            other => (None, other),
        };
        match inner {
            SolveEvent::Progress {
                conflicts,
                trail,
                heap,
                learnt,
                avg_lbd,
            } => {
                if !header_printed {
                    println!("c | who |  conflicts |  trail |   heap | learnt | avg lbd |");
                    header_printed = true;
                }
                println!(
                    "c | {:>3} | {conflicts:>10} | {trail:>6} | {heap:>6} | {learnt:>6} | {avg_lbd:>7.2} |",
                    worker_tag(worker)
                );
            }
            SolveEvent::Restart {
                restarts,
                conflicts,
            } => println!(
                "c {:>3} restart {restarts} at conflict {conflicts}",
                worker_tag(worker)
            ),
            SolveEvent::Reduce {
                live_before,
                live_after,
                words_reclaimed,
            } => println!(
                "c {:>3} reduce {live_before} -> {live_after} clauses \
                 ({words_reclaimed} words reclaimed)",
                worker_tag(worker)
            ),
            SolveEvent::WorkerDone { worker, verdict } => {
                println!("c w{worker} done: {verdict}");
            }
            SolveEvent::PoolEvicted { evicted } => {
                println!("c share pool evicted {evicted} clauses (capacity pressure)");
            }
            _ => {}
        }
    }
}

/// Writes the machine-readable run summary to `path` and self-validates
/// it: the emitted document is parsed back and its verdict and stats block
/// must reproduce the engine's exactly. `extra` carries additional
/// top-level sections (worker reports, BMC depths) that parsers of the
/// core schema may ignore.
fn write_stats_json(
    path: &str,
    verdict: SolveVerdict,
    seconds: f64,
    stats: &Stats,
    extra: Vec<(String, JsonValue)>,
) -> Result<(), String> {
    let snapshot = StatsSnapshot::new(verdict, seconds, stats);
    let mut value = snapshot.to_json();
    if let JsonValue::Object(fields) = &mut value {
        fields.extend(extra);
    }
    let text = value.render();
    let parsed =
        StatsSnapshot::parse(&text).map_err(|e| format!("stats JSON failed to parse back: {e}"))?;
    if parsed.verdict != verdict || parsed.stats != *stats {
        return Err("stats JSON round-trip mismatch".to_string());
    }
    fs::write(path, &text).map_err(|e| format!("cannot write stats to {path}: {e}"))
}

/// The portfolio's per-worker reports as a JSON array (the `"workers"`
/// section of `--stats-json`).
fn workers_json(portfolio: &PortfolioEngine) -> JsonValue {
    JsonValue::Array(
        portfolio
            .reports()
            .iter()
            .map(|r| {
                let outcome = match r.outcome {
                    WorkerOutcome::Sat => "sat",
                    WorkerOutcome::Unsat => "unsat",
                    WorkerOutcome::Stopped(_) => "stopped",
                };
                JsonValue::Object(vec![
                    ("id".to_string(), JsonValue::Int(r.id as u64)),
                    ("outcome".to_string(), JsonValue::Str(outcome.to_string())),
                    ("winner".to_string(), JsonValue::Bool(r.winner)),
                    ("conflicts".to_string(), JsonValue::Int(r.conflicts)),
                    ("decisions".to_string(), JsonValue::Int(r.decisions)),
                    ("exported".to_string(), JsonValue::Int(r.exported)),
                    ("imported".to_string(), JsonValue::Int(r.imported)),
                    ("missed".to_string(), JsonValue::Int(r.missed)),
                ])
            })
            .collect(),
    )
}

/// Streams the DIMACS input (file or stdin) into `sink` without buffering
/// the whole text, exiting with code 2 on I/O or parse errors.
fn stream_input(file: &Option<String>, sink: &mut Ingest) -> dimacs::DimacsSummary {
    let result = match file {
        Some(path) => match fs::File::open(path) {
            Ok(f) => dimacs::stream_into(std::io::BufReader::new(f), sink),
            Err(e) => die(format!("cannot read {path}: {e}")),
        },
        None => dimacs::stream_into(std::io::stdin().lock(), sink),
    };
    result.unwrap_or_else(|e| die(format!("cannot read DIMACS input: {e}")))
}

/// Clause sink that checks every streamed clause against a model — how
/// the SAT answer of the streaming (no intermediate `Cnf`) path gets its
/// self-verification back: the input file is streamed a second time,
/// clause by clause, against the model.
struct ModelCheck<'a> {
    model: &'a Assignment,
    ok: bool,
}

impl ClauseSink for ModelCheck<'_> {
    fn clause(&mut self, lits: &[Lit]) {
        if !lits.iter().any(|&l| self.model.satisfies(l)) {
            self.ok = false;
        }
    }
}

/// Self-verifies a SAT model: against the mirror `Cnf` when one was kept
/// (`--check-proof`), else by re-streaming the input file. Returns `None`
/// when verification is impossible (stdin input, or the file vanished) —
/// the model is still correct by construction of the solver.
fn verify_model(model: &Assignment, mirror: &Option<Cnf>, file: &Option<String>) -> Option<bool> {
    if let Some(cnf) = mirror {
        return Some(cnf.is_satisfied_by(model));
    }
    let path = file.as_ref()?;
    let f = fs::File::open(path).ok()?;
    let mut check = ModelCheck { model, ok: true };
    dimacs::stream_into(std::io::BufReader::new(f), &mut check).ok()?;
    Some(check.ok)
}

/// Prints the `v` model lines, wrapped at ≤ 78 columns as the
/// SAT-competition output format requires.
fn print_model(model: &Assignment, num_vars: usize) {
    let mut line = String::from("v");
    let push_tok = |line: &mut String, tok: &str| {
        if line.len() + 1 + tok.len() > 78 {
            println!("{line}");
            line.clear();
            line.push('v');
        }
        line.push(' ');
        line.push_str(tok);
    };
    for i in 0..num_vars {
        let var = Var::new(i as u32);
        let lit = if model.value(var) == LBool::True {
            (i as i64) + 1
        } else {
            -((i as i64) + 1)
        };
        push_tok(&mut line, &lit.to_string());
    }
    push_tok(&mut line, "0");
    println!("{line}");
}

struct BmcOptions {
    bits: usize,
    max_depth: Option<usize>,
    config: SolverConfig,
    scratch: bool,
    quiet: bool,
    stats_json: Option<String>,
    verbose: bool,
}

fn parse_bmc_args(argv: &[String]) -> BmcOptions {
    let mut opts = BmcOptions {
        bits: 3,
        max_depth: None,
        config: SolverConfig::berkmin(),
        scratch: false,
        quiet: false,
        stats_json: None,
        verbose: false,
    };
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bits" => {
                opts.bits = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| (1..=16).contains(&b))
                    .unwrap_or_else(|| usage());
            }
            "--max-depth" => {
                opts.max_depth = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--engine" | "--config" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.config = config_by_name(name);
            }
            "--max-conflicts" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.budget = Budget::conflicts(n);
            }
            "--seed" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.seed = n;
            }
            "--no-simplify" => opts.config.simplify = SimplifyConfig::off(),
            "--scratch" => opts.scratch = true,
            "--paranoid" => opts.config.paranoid = true,
            "--stats-json" => {
                opts.stats_json = Some(args.next().cloned().unwrap_or_else(|| usage()));
            }
            "-v" | "--verbose" => opts.verbose = true,
            "--quiet" => opts.quiet = true,
            _ => usage(),
        }
    }
    opts
}

/// The `bmc` subcommand: sweep an enabled-counter netlist for the first
/// depth at which the all-ones state is reachable — incrementally (one
/// growing encoding, one warm `dyn SatEngine`, per-depth activation
/// literals) or, with `--scratch`, by re-unrolling and re-solving every
/// depth.
fn run_bmc(argv: &[String]) -> ExitCode {
    let opts = parse_bmc_args(argv);
    let bits = opts.bits;
    let max_depth = opts.max_depth.unwrap_or((1 << bits) - 1);
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    if !opts.quiet {
        println!(
            "c berkmin-cli bmc: {bits}-bit enabled counter, all-ones target, \
             depths 0..={max_depth}, {} mode",
            if opts.scratch {
                "scratch"
            } else {
                "incremental"
            }
        );
    }

    let netlist = enabled_counter(bits);
    let start = std::time::Instant::now();
    let mut total_conflicts = 0u64;
    let mut outcome: Option<usize> = None;
    // An aborted sweep (budget/termination) records where it stopped; the
    // summary lines below print on this path too — an unknown verdict must
    // never swallow the run's accounting.
    let mut aborted: Option<(usize, String)> = None;
    // Per-depth record for --stats-json: (depth, result, conflicts so far).
    let mut depths: Vec<(usize, &'static str, u64)> = Vec::new();
    let mut final_stats = Stats::default();
    if opts.scratch {
        let quiet = opts.quiet;
        let depths = &mut depths;
        let (result, conflicts) = scratch_first_reaching_depth(
            &netlist,
            &pattern,
            max_depth,
            &opts.config,
            |t, status, so_far| {
                depths.push((t, describe(status), so_far));
                if !quiet {
                    println!(
                        "c depth {t}: {} (conflicts so far {so_far})",
                        describe(status)
                    );
                }
            },
        );
        total_conflicts = conflicts;
        match result {
            BmcOutcome::Reached { depth, .. } => outcome = Some(depth),
            BmcOutcome::Exhausted => {}
            BmcOutcome::Aborted { depth, reason } => aborted = Some((depth, reason.to_string())),
        }
        // Scratch mode has no single engine to snapshot; the stats block
        // carries the summed conflict count only.
        final_stats.conflicts = total_conflicts;
    } else {
        // The incremental sweep runs entirely behind the trait object: the
        // `--engine` preset only decides what the builder assembles.
        let mut engine = SolverBuilder::with_config(opts.config.clone()).build_engine();
        if opts.verbose {
            engine.set_observer(Some(Box::new(verbose_observer())));
        }
        let mut driver = BmcDriver::with_engine(netlist, engine);
        for t in 0..=max_depth {
            let status = driver.check_outputs_at(t, &pattern);
            total_conflicts = driver.engine().stats().conflicts;
            depths.push((t, describe(&status), total_conflicts));
            if !opts.quiet {
                println!(
                    "c depth {t}: {} (conflicts so far {total_conflicts})",
                    describe(&status)
                );
            }
            match status {
                SolveStatus::Sat(_) => {
                    outcome = Some(t);
                    break;
                }
                SolveStatus::Unsat => {}
                SolveStatus::Unknown(reason) => {
                    aborted = Some((t, reason.to_string()));
                    break;
                }
            }
        }
        let s = driver.engine().stats();
        if !opts.quiet {
            println!(
                "c warm engine: {} solve calls, {} learnt total, {} deleted",
                s.solve_calls, s.learnt_total, s.deleted_clauses
            );
        }
        final_stats = s.clone();
    }

    if !opts.quiet {
        println!(
            "c time {:.3} s  total conflicts {total_conflicts}",
            start.elapsed().as_secs_f64()
        );
    }

    let verdict = if outcome.is_some() {
        SolveVerdict::Sat
    } else if aborted.is_some() {
        SolveVerdict::Unknown
    } else {
        SolveVerdict::Unsat
    };
    if let Some(path) = &opts.stats_json {
        let depths_json = JsonValue::Array(
            depths
                .iter()
                .map(|&(depth, result, conflicts)| {
                    JsonValue::Object(vec![
                        ("depth".to_string(), JsonValue::Int(depth as u64)),
                        ("result".to_string(), JsonValue::Str(result.to_string())),
                        ("conflicts".to_string(), JsonValue::Int(conflicts)),
                    ])
                })
                .collect(),
        );
        let extra = vec![("depths".to_string(), depths_json)];
        if let Err(e) = write_stats_json(
            path,
            verdict,
            start.elapsed().as_secs_f64(),
            &final_stats,
            extra,
        ) {
            eprintln!("internal error: {e}");
            return ExitCode::from(3);
        }
    }

    match (outcome, aborted) {
        (Some(depth), _) => {
            println!("s SATISFIABLE");
            println!("c all-ones first reachable at depth {depth}");
            ExitCode::from(10)
        }
        (None, Some((depth, reason))) => {
            println!("s UNKNOWN");
            println!("c stopped at depth {depth}: {reason}");
            ExitCode::SUCCESS
        }
        (None, None) => {
            println!("s UNSATISFIABLE");
            println!("c all-ones unreachable within depth {max_depth}");
            ExitCode::from(20)
        }
    }
}

fn describe(status: &SolveStatus) -> &'static str {
    match status {
        SolveStatus::Sat(_) => "reachable",
        SolveStatus::Unsat => "unreachable",
        SolveStatus::Unknown(_) => "unknown",
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bmc") {
        return run_bmc(&argv[1..]);
    }
    let opts = parse_args();

    // Assemble the engine: the proof sink attaches at construction time,
    // shared through an Rc so the recorded proof can be read back after
    // solving.
    let want_proof = opts.proof_path.is_some() || opts.check_proof;
    let proof = Rc::new(RefCell::new(DratProof::new()));
    let mut holder = if opts.portfolio {
        let share = (!opts.no_share).then_some(opts.share_lbd);
        if want_proof && share.is_some() {
            die("configuration error: --proof/--check-proof with clause \
                 sharing on would emit an unsound DRAT proof (imported \
                 clauses are not derivable in the winner's log); add \
                 --no-share to keep proofs");
        }
        let mut engine = PortfolioEngine::new(
            PortfolioConfig::new(opts.threads)
                .with_share_lbd(share)
                .with_deterministic(opts.deterministic)
                .with_budget(opts.config.budget)
                .with_paranoid(opts.config.paranoid)
                .with_simplify(opts.config.simplify),
        );
        if want_proof {
            engine.set_proof(Box::new(Rc::clone(&proof)));
        }
        EngineHolder::Portfolio(Box::new(engine))
    } else {
        let mut builder = SolverBuilder::with_config(opts.config.clone());
        if want_proof {
            builder = builder.proof(Rc::clone(&proof));
        }
        EngineHolder::Single(builder.build_engine())
    };
    if opts.verbose {
        holder
            .as_engine()
            .set_observer(Some(Box::new(verbose_observer())));
    }

    // Stream the input straight into the engine. A mirror Cnf is retained
    // only for --check-proof, whose RUP checker needs the original formula.
    let mut mirror = opts.check_proof.then(Cnf::new);
    let summary = {
        let mut ingest = Ingest {
            engine: holder.as_engine(),
            mirror: mirror.as_mut(),
        };
        stream_input(&opts.file, &mut ingest)
    };
    if !opts.quiet {
        println!(
            "c berkmin-cli: {} variables, {} clauses",
            summary.num_vars, summary.num_clauses
        );
    }

    let start = std::time::Instant::now();
    let status = holder.as_engine().solve();
    let elapsed = start.elapsed();

    if !opts.quiet {
        let s = holder.stats();
        println!(
            "c decisions {} conflicts {} propagations {} restarts {} learnt {}",
            s.decisions, s.conflicts, s.propagations, s.restarts, s.learnt_total
        );
        // Propagation throughput: the arena/BCP speedups show up here
        // without needing the criterion benches. Average glue (LBD) of the
        // learnt clauses rides along — low glue means reusable lemmas.
        let secs = elapsed.as_secs_f64().max(1e-9);
        println!(
            "c time {:.3} s  propagation rate {:.0} lits/sec  gc {} ({} words reclaimed)  \
             avg lbd {:.2} (max {})",
            elapsed.as_secs_f64(),
            s.propagations as f64 / secs,
            s.gc_runs,
            s.gc_words_reclaimed,
            s.avg_lbd(),
            s.lbd_max
        );
        let simp = opts.config.simplify;
        if simp.enable && (simp.subsumption || simp.var_elim) {
            println!(
                "c simplify subsumed {} strengthened {} eliminated {} resolvents {}",
                s.clauses_subsumed, s.clauses_strengthened, s.vars_eliminated, s.elim_resolvents
            );
        }
        if let EngineHolder::Portfolio(p) = &holder {
            println!("{}", workers_line(p));
        }
    }

    if let Some(path) = &opts.stats_json {
        let mut extra = Vec::new();
        if let EngineHolder::Portfolio(p) = &holder {
            extra.push(("workers".to_string(), workers_json(p)));
        }
        if let Err(e) = write_stats_json(
            path,
            SolveVerdict::from(&status),
            elapsed.as_secs_f64(),
            holder.stats(),
            extra,
        ) {
            eprintln!("internal error: {e}");
            return ExitCode::from(3);
        }
    }

    match status {
        SolveStatus::Sat(model) => {
            println!("s SATISFIABLE");
            if opts.print_model {
                print_model(&model, summary.num_vars);
            }
            if verify_model(&model, &mirror, &opts.file) == Some(false) {
                eprintln!("internal error: model verification failed");
                return ExitCode::from(3);
            }
            ExitCode::from(10) // SAT-competition exit code
        }
        SolveStatus::Unsat => {
            println!("s UNSATISFIABLE");
            let proof = proof.borrow();
            if let Some(path) = &opts.proof_path {
                if let Err(e) = fs::write(path, proof.to_text()) {
                    eprintln!("cannot write proof to {path}: {e}");
                    return ExitCode::from(3);
                }
                if !opts.quiet {
                    println!("c proof: {} steps written to {path}", proof.len());
                }
            }
            if opts.check_proof {
                let cnf = mirror.as_ref().expect("mirror kept for --check-proof");
                match check_refutation(cnf, &proof) {
                    Ok(report) => {
                        if !opts.quiet {
                            println!(
                                "c proof checked: {} additions verified",
                                report.additions_checked
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("internal error: proof rejected: {e}");
                        return ExitCode::from(3);
                    }
                }
            }
            ExitCode::from(20) // SAT-competition exit code
        }
        SolveStatus::Unknown(reason) => {
            println!("s UNKNOWN");
            if !opts.quiet {
                println!("c stopped: {reason}");
            }
            ExitCode::SUCCESS
        }
    }
}
