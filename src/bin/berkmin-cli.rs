//! Command-line front end: solve a DIMACS CNF file with any of the paper's
//! solver configurations, optionally emitting and self-checking a DRAT
//! proof — or run an incremental bounded-model-checking sweep with the
//! `bmc` subcommand. Output follows the SAT-competition conventions
//! (`c` comments, `s` status, `v` model lines).
//!
//! ```text
//! usage: berkmin-cli [OPTIONS] [FILE]
//!        berkmin-cli bmc [OPTIONS]
//!
//!   FILE                   DIMACS CNF file ('-' or absent = stdin)
//!   --config NAME          berkmin | chaff | limmat | less-sensitivity |
//!                          less-mobility | limited-keeping   (default: berkmin)
//!   --max-conflicts N      abort after N conflicts
//!   --seed N               heuristic PRNG seed
//!   --proof FILE           write a DRAT refutation to FILE on UNSAT
//!   --check-proof          verify the proof with the built-in RUP checker
//!   --no-model             suppress the 'v' model lines
//!   --quiet                suppress statistics
//!
//! bmc options (enabled-counter all-ones reachability sweep):
//!   --bits N               counter width (default 3)
//!   --max-depth D          deepest cycle to try (default 2^bits - 1)
//!   --scratch              re-solve every depth from scratch instead of
//!                          reusing one incremental solver (for comparison)
//! ```

use std::fs;
use std::io::Read;
use std::process::ExitCode;

use berkmin::{Budget, SolveStatus, Solver, SolverConfig};
use berkmin_circuit::arith::enabled_counter;
use berkmin_circuit::bmc::{scratch_first_reaching_depth, BmcDriver, BmcOutcome};
use berkmin_cnf::{dimacs, Cnf, LBool, Var};
use berkmin_drat::{check_refutation, DratProof};

struct Options {
    file: Option<String>,
    config: SolverConfig,
    proof_path: Option<String>,
    check_proof: bool,
    print_model: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: berkmin-cli [--config NAME] [--max-conflicts N] [--seed N] \
         [--proof FILE] [--check-proof] [--no-model] [--quiet] [FILE]\n\
         \x20      berkmin-cli bmc [--bits N] [--max-depth D] [--config NAME] \
         [--max-conflicts N] [--seed N] [--scratch] [--quiet]"
    );
    std::process::exit(2);
}

fn config_by_name(name: &str) -> SolverConfig {
    match name {
        "berkmin" => SolverConfig::berkmin(),
        "chaff" => SolverConfig::chaff_like(),
        "limmat" => SolverConfig::limmat_like(),
        "less-sensitivity" => SolverConfig::less_sensitivity(),
        "less-mobility" => SolverConfig::less_mobility(),
        "limited-keeping" => SolverConfig::limited_keeping(),
        other => {
            eprintln!("unknown config {other:?}");
            usage()
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        config: SolverConfig::berkmin(),
        proof_path: None,
        check_proof: false,
        print_model: true,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.config = config_by_name(&name);
            }
            "--max-conflicts" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.budget = Budget::conflicts(n);
            }
            "--seed" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.seed = n;
            }
            "--proof" => opts.proof_path = Some(args.next().unwrap_or_else(|| usage())),
            "--check-proof" => opts.check_proof = true,
            "--no-model" => opts.print_model = false,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            "-" => opts.file = None,
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    opts
}

fn read_input(opts: &Options) -> Cnf {
    let text = match &opts.file {
        Some(path) => fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("cannot read stdin: {e}");
                    std::process::exit(2);
                });
            buf
        }
    };
    dimacs::parse(&text).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        std::process::exit(2);
    })
}

struct BmcOptions {
    bits: usize,
    max_depth: Option<usize>,
    config: SolverConfig,
    scratch: bool,
    quiet: bool,
}

fn parse_bmc_args(argv: &[String]) -> BmcOptions {
    let mut opts = BmcOptions {
        bits: 3,
        max_depth: None,
        config: SolverConfig::berkmin(),
        scratch: false,
        quiet: false,
    };
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bits" => {
                opts.bits = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| (1..=16).contains(&b))
                    .unwrap_or_else(|| usage());
            }
            "--max-depth" => {
                opts.max_depth = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--config" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.config = config_by_name(name);
            }
            "--max-conflicts" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.budget = Budget::conflicts(n);
            }
            "--seed" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.seed = n;
            }
            "--scratch" => opts.scratch = true,
            "--quiet" => opts.quiet = true,
            _ => usage(),
        }
    }
    opts
}

/// The `bmc` subcommand: sweep an enabled-counter netlist for the first
/// depth at which the all-ones state is reachable — incrementally (one
/// growing encoding, one warm solver, per-depth activation literals) or,
/// with `--scratch`, by re-unrolling and re-solving every depth.
fn run_bmc(argv: &[String]) -> ExitCode {
    let opts = parse_bmc_args(argv);
    let bits = opts.bits;
    let max_depth = opts.max_depth.unwrap_or((1 << bits) - 1);
    let pattern: Vec<(usize, bool)> = (0..bits).map(|o| (o, true)).collect();
    if !opts.quiet {
        println!(
            "c berkmin-cli bmc: {bits}-bit enabled counter, all-ones target, \
             depths 0..={max_depth}, {} mode",
            if opts.scratch {
                "scratch"
            } else {
                "incremental"
            }
        );
    }

    let netlist = enabled_counter(bits);
    let start = std::time::Instant::now();
    let mut total_conflicts = 0u64;
    let mut outcome: Option<usize> = None;
    if opts.scratch {
        let quiet = opts.quiet;
        let (result, conflicts) = scratch_first_reaching_depth(
            &netlist,
            &pattern,
            max_depth,
            &opts.config,
            |t, status, so_far| {
                if !quiet {
                    println!(
                        "c depth {t}: {} (conflicts so far {so_far})",
                        describe(status)
                    );
                }
            },
        );
        total_conflicts = conflicts;
        match result {
            BmcOutcome::Reached { depth, .. } => outcome = Some(depth),
            BmcOutcome::Exhausted => {}
            BmcOutcome::Aborted { depth, reason } => {
                println!("s UNKNOWN");
                println!("c stopped at depth {depth}: {reason}");
                return ExitCode::SUCCESS;
            }
        }
    } else {
        let mut driver = BmcDriver::new(netlist, opts.config.clone());
        for t in 0..=max_depth {
            let status = driver.check_outputs_at(t, &pattern);
            total_conflicts = driver.solver().stats().conflicts;
            if !opts.quiet {
                println!(
                    "c depth {t}: {} (conflicts so far {total_conflicts})",
                    describe(&status)
                );
            }
            match status {
                SolveStatus::Sat(_) => {
                    outcome = Some(t);
                    break;
                }
                SolveStatus::Unsat => {}
                SolveStatus::Unknown(reason) => {
                    println!("s UNKNOWN");
                    println!("c stopped at depth {t}: {reason}");
                    return ExitCode::SUCCESS;
                }
            }
        }
        let s = driver.solver().stats();
        if !opts.quiet {
            println!(
                "c warm solver: {} solve calls, {} learnt clauses live, {} learnt total",
                s.solve_calls,
                driver.solver().num_learnt_clauses(),
                s.learnt_total
            );
        }
    }

    if !opts.quiet {
        println!(
            "c time {:.3} s  total conflicts {total_conflicts}",
            start.elapsed().as_secs_f64()
        );
    }
    match outcome {
        Some(depth) => {
            println!("s SATISFIABLE");
            println!("c all-ones first reachable at depth {depth}");
            ExitCode::from(10)
        }
        None => {
            println!("s UNSATISFIABLE");
            println!("c all-ones unreachable within depth {max_depth}");
            ExitCode::from(20)
        }
    }
}

fn describe(status: &SolveStatus) -> &'static str {
    match status {
        SolveStatus::Sat(_) => "reachable",
        SolveStatus::Unsat => "unreachable",
        SolveStatus::Unknown(_) => "unknown",
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bmc") {
        return run_bmc(&argv[1..]);
    }
    let opts = parse_args();
    let cnf = read_input(&opts);
    if !opts.quiet {
        println!(
            "c berkmin-cli: {} variables, {} clauses",
            cnf.num_vars(),
            cnf.num_clauses()
        );
    }

    let want_proof = opts.proof_path.is_some() || opts.check_proof;
    let mut solver = Solver::new(&cnf, opts.config.clone());
    let mut proof = DratProof::new();
    let start = std::time::Instant::now();
    let status = if want_proof {
        solver.solve_with_proof(&mut proof)
    } else {
        solver.solve()
    };
    let elapsed = start.elapsed();

    if !opts.quiet {
        let s = solver.stats();
        println!(
            "c decisions {} conflicts {} propagations {} restarts {} learnt {}",
            s.decisions, s.conflicts, s.propagations, s.restarts, s.learnt_total
        );
        // Propagation throughput: the arena/BCP speedups show up here
        // without needing the criterion benches.
        let secs = elapsed.as_secs_f64().max(1e-9);
        println!(
            "c time {:.3} s  propagation rate {:.0} lits/sec  gc {} ({} words reclaimed)",
            elapsed.as_secs_f64(),
            s.propagations as f64 / secs,
            s.gc_runs,
            s.gc_words_reclaimed
        );
    }

    match status {
        SolveStatus::Sat(model) => {
            println!("s SATISFIABLE");
            if opts.print_model {
                let mut line = String::from("v");
                for i in 0..cnf.num_vars() {
                    let var = Var::new(i as u32);
                    let lit = if model.value(var) == LBool::True {
                        (i as i64) + 1
                    } else {
                        -((i as i64) + 1)
                    };
                    line.push(' ');
                    line.push_str(&lit.to_string());
                    if line.len() > 72 {
                        println!("{line}");
                        line = String::from("v");
                    }
                }
                println!("{line} 0");
            }
            if !cnf.is_satisfied_by(&model) {
                eprintln!("internal error: model verification failed");
                return ExitCode::from(3);
            }
            ExitCode::from(10) // SAT-competition exit code
        }
        SolveStatus::Unsat => {
            println!("s UNSATISFIABLE");
            if let Some(path) = &opts.proof_path {
                if let Err(e) = fs::write(path, proof.to_text()) {
                    eprintln!("cannot write proof to {path}: {e}");
                    return ExitCode::from(3);
                }
                if !opts.quiet {
                    println!("c proof: {} steps written to {path}", proof.len());
                }
            }
            if opts.check_proof {
                match check_refutation(&cnf, &proof) {
                    Ok(report) => {
                        if !opts.quiet {
                            println!(
                                "c proof checked: {} additions verified",
                                report.additions_checked
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("internal error: proof rejected: {e}");
                        return ExitCode::from(3);
                    }
                }
            }
            ExitCode::from(20) // SAT-competition exit code
        }
        SolveStatus::Unknown(reason) => {
            println!("s UNKNOWN");
            if !opts.quiet {
                println!("c stopped: {reason}");
            }
            ExitCode::SUCCESS
        }
    }
}
