//! Command-line front end: solve a DIMACS CNF file with any of the paper's
//! solver configurations, optionally emitting and self-checking a DRAT
//! proof. Output follows the SAT-competition conventions (`c` comments,
//! `s` status, `v` model lines).
//!
//! ```text
//! usage: berkmin-cli [OPTIONS] [FILE]
//!
//!   FILE                   DIMACS CNF file ('-' or absent = stdin)
//!   --config NAME          berkmin | chaff | limmat | less-sensitivity |
//!                          less-mobility | limited-keeping   (default: berkmin)
//!   --max-conflicts N      abort after N conflicts
//!   --seed N               heuristic PRNG seed
//!   --proof FILE           write a DRAT refutation to FILE on UNSAT
//!   --check-proof          verify the proof with the built-in RUP checker
//!   --no-model             suppress the 'v' model lines
//!   --quiet                suppress statistics
//! ```

use std::fs;
use std::io::Read;
use std::process::ExitCode;

use berkmin::{Budget, SolveStatus, Solver, SolverConfig};
use berkmin_cnf::{dimacs, Cnf, LBool, Var};
use berkmin_drat::{check_refutation, DratProof};

struct Options {
    file: Option<String>,
    config: SolverConfig,
    proof_path: Option<String>,
    check_proof: bool,
    print_model: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: berkmin-cli [--config NAME] [--max-conflicts N] [--seed N] \
         [--proof FILE] [--check-proof] [--no-model] [--quiet] [FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        config: SolverConfig::berkmin(),
        proof_path: None,
        check_proof: false,
        print_model: true,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.config = match name.as_str() {
                    "berkmin" => SolverConfig::berkmin(),
                    "chaff" => SolverConfig::chaff_like(),
                    "limmat" => SolverConfig::limmat_like(),
                    "less-sensitivity" => SolverConfig::less_sensitivity(),
                    "less-mobility" => SolverConfig::less_mobility(),
                    "limited-keeping" => SolverConfig::limited_keeping(),
                    other => {
                        eprintln!("unknown config {other:?}");
                        usage()
                    }
                };
            }
            "--max-conflicts" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.budget = Budget::conflicts(n);
            }
            "--seed" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.config.seed = n;
            }
            "--proof" => opts.proof_path = Some(args.next().unwrap_or_else(|| usage())),
            "--check-proof" => opts.check_proof = true,
            "--no-model" => opts.print_model = false,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            "-" => opts.file = None,
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    opts
}

fn read_input(opts: &Options) -> Cnf {
    let text = match &opts.file {
        Some(path) => fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("cannot read stdin: {e}");
                    std::process::exit(2);
                });
            buf
        }
    };
    dimacs::parse(&text).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let opts = parse_args();
    let cnf = read_input(&opts);
    if !opts.quiet {
        println!(
            "c berkmin-cli: {} variables, {} clauses",
            cnf.num_vars(),
            cnf.num_clauses()
        );
    }

    let want_proof = opts.proof_path.is_some() || opts.check_proof;
    let mut solver = Solver::new(&cnf, opts.config.clone());
    let mut proof = DratProof::new();
    let start = std::time::Instant::now();
    let status = if want_proof {
        solver.solve_with_proof(&mut proof)
    } else {
        solver.solve()
    };
    let elapsed = start.elapsed();

    if !opts.quiet {
        let s = solver.stats();
        println!(
            "c decisions {} conflicts {} propagations {} restarts {} learnt {}",
            s.decisions, s.conflicts, s.propagations, s.restarts, s.learnt_total
        );
        // Propagation throughput: the arena/BCP speedups show up here
        // without needing the criterion benches.
        let secs = elapsed.as_secs_f64().max(1e-9);
        println!(
            "c time {:.3} s  propagation rate {:.0} lits/sec  gc {} ({} words reclaimed)",
            elapsed.as_secs_f64(),
            s.propagations as f64 / secs,
            s.gc_runs,
            s.gc_words_reclaimed
        );
    }

    match status {
        SolveStatus::Sat(model) => {
            println!("s SATISFIABLE");
            if opts.print_model {
                let mut line = String::from("v");
                for i in 0..cnf.num_vars() {
                    let var = Var::new(i as u32);
                    let lit = if model.value(var) == LBool::True {
                        (i as i64) + 1
                    } else {
                        -((i as i64) + 1)
                    };
                    line.push(' ');
                    line.push_str(&lit.to_string());
                    if line.len() > 72 {
                        println!("{line}");
                        line = String::from("v");
                    }
                }
                println!("{line} 0");
            }
            if !cnf.is_satisfied_by(&model) {
                eprintln!("internal error: model verification failed");
                return ExitCode::from(3);
            }
            ExitCode::from(10) // SAT-competition exit code
        }
        SolveStatus::Unsat => {
            println!("s UNSATISFIABLE");
            if let Some(path) = &opts.proof_path {
                if let Err(e) = fs::write(path, proof.to_text()) {
                    eprintln!("cannot write proof to {path}: {e}");
                    return ExitCode::from(3);
                }
                if !opts.quiet {
                    println!("c proof: {} steps written to {path}", proof.len());
                }
            }
            if opts.check_proof {
                match check_refutation(&cnf, &proof) {
                    Ok(report) => {
                        if !opts.quiet {
                            println!(
                                "c proof checked: {} additions verified",
                                report.additions_checked
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("internal error: proof rejected: {e}");
                        return ExitCode::from(3);
                    }
                }
            }
            ExitCode::from(20) // SAT-competition exit code
        }
        SolveStatus::Unknown(reason) => {
            println!("s UNKNOWN");
            if !opts.quiet {
                println!("c stopped: {reason}");
            }
            ExitCode::SUCCESS
        }
    }
}
