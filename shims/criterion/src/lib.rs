//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal wall-clock benchmark harness implementing the `criterion 0.5`
//! API surface the bench targets use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It reports mean / min / max wall-clock per iteration on stdout. There is
//! no statistical analysis, outlier rejection, or HTML report — the point
//! is that `cargo bench` compiles, runs, and prints comparable numbers.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Smoke-mode flag: when set, every benchmark runs exactly one sample — the
/// shim's analog of real criterion's `cargo bench -- --test`, used by CI to
/// keep the bench targets from rotting without paying for a full run.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// Enables or disables smoke mode (one sample per benchmark).
pub fn set_smoke(on: bool) {
    SMOKE.store(on, Ordering::Relaxed);
}

/// Whether smoke mode is enabled.
pub fn is_smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// Scans the harness arguments (everything after `--` on the `cargo bench`
/// command line) and enables smoke mode when `--test` is present. Invoked
/// by [`criterion_main!`] before any group runs.
pub fn init_from_args() {
    if std::env::args().any(|a| a == "--test") {
        set_smoke(true);
    }
}

/// Opaque hint mirroring `criterion::BatchSize`; the shim times each batch
/// individually regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; many iterations per batch in real criterion.
    SmallInput,
    /// Routine input is large.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Prevent the optimizer from discarding a value (mirror of
/// `criterion::black_box`; uses a volatile-free best-effort fence).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: u64,
    /// Mean/min/max per-iteration time of the last run, filled by `iter*`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut total = Duration::ZERO;
        let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.result = Some((total / self.samples as u32, min, max));
    }

    /// Time `routine` on fresh inputs built by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.result = Some((total / self.samples as u32, min, max));
    }

    /// Like `iter_batched`, with the input passed by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), _size);
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Override measurement time; accepted and ignored by the shim (sample
    /// count alone controls duration).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if is_smoke() { 1 } else { self.samples };
        let mut bencher = Bencher {
            samples,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, min, max)) => println!(
                "{}/{:<28} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
                self.name, id, mean, min, max, samples
            ),
            None => println!("{}/{:<28} (no measurement taken)", self.name, id),
        }
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group name (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups (mirror of
/// `criterion::criterion_main!`). Respects `-- --test` (smoke mode: one
/// sample per benchmark), like real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that read or toggle the global smoke flag. Poison
    /// from an earlier panicking holder is irrelevant (the guard below
    /// restores the flag), so it is ignored.
    static SMOKE_LOCK: Mutex<()> = Mutex::new(());

    fn smoke_lock() -> std::sync::MutexGuard<'static, ()> {
        SMOKE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Restores smoke mode to off even if the test body panics.
    struct SmokeOff;
    impl Drop for SmokeOff {
        fn drop(&mut self) {
            set_smoke(false);
        }
    }

    #[test]
    fn group_runs_and_reports() {
        let _guard = smoke_lock();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("iter", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| {
                    runs += 1;
                    v.iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn smoke_mode_takes_a_single_sample() {
        let _guard = smoke_lock();
        set_smoke(true);
        let _restore = SmokeOff;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(50);
        let mut runs = 0u32;
        group.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 1, "--test smoke mode must run exactly one sample");
    }
}
