//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal wall-clock benchmark harness implementing the `criterion 0.5`
//! API surface the bench targets use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It reports mean / min / max wall-clock per iteration on stdout. There is
//! no statistical analysis, outlier rejection, or HTML report — the point
//! is that `cargo bench` compiles, runs, and prints comparable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque hint mirroring `criterion::BatchSize`; the shim times each batch
/// individually regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; many iterations per batch in real criterion.
    SmallInput,
    /// Routine input is large.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Prevent the optimizer from discarding a value (mirror of
/// `criterion::black_box`; uses a volatile-free best-effort fence).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: u64,
    /// Mean/min/max per-iteration time of the last run, filled by `iter*`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut total = Duration::ZERO;
        let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.result = Some((total / self.samples as u32, min, max));
    }

    /// Time `routine` on fresh inputs built by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.result = Some((total / self.samples as u32, min, max));
    }

    /// Like `iter_batched`, with the input passed by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), _size);
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Override measurement time; accepted and ignored by the shim (sample
    /// count alone controls duration).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, min, max)) => println!(
                "{}/{:<28} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
                self.name, id, mean, min, max, self.samples
            ),
            None => println!("{}/{:<28} (no measurement taken)", self.name, id),
        }
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group name (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("iter", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| {
                    runs += 1;
                    v.iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
