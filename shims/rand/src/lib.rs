//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic implementation of exactly the `rand 0.8` API
//! surface the generators use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`. The generator
//! is xoshiro256++ seeded through splitmix64, which matches the statistical
//! quality the benchmark generators need (their SAT/UNSAT verdicts are
//! guaranteed by construction, not by RNG quality).
//!
//! Integer range sampling is unbiased (rejection sampling over whole
//! multiples of the range width).

#![forbid(unsafe_code)]

/// A source of raw random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform draw from `[0, width)`, `width > 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0, "empty sample range");
    // Reject the final partial cycle so every residue is equally likely.
    let limit = u64::MAX - u64::MAX % width;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % width;
        }
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, width + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (`bool`, unsigned integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniformly random mantissa bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..1u64 << 40);
            assert!(u < 1 << 40);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
