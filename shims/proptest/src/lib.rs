//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! small property-testing harness implementing exactly the `proptest 1.x`
//! API surface the test suite uses: the [`proptest!`], [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_oneof!`] macros, [`strategy::Strategy`]
//! with `prop_map`, integer-range / tuple / `any::<T>()` strategies,
//! [`collection::vec`], and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted for a shim:
//! no shrinking (a failing case reports its inputs via `Debug` where
//! available, but is not minimised), and a fixed deterministic seed per
//! test (cases are reproducible run-to-run).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case-count configuration and the per-test runner state.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case, produced by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG + bookkeeping threaded through strategies.
    #[derive(Debug)]
    pub struct TestRunner {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRunner {
        /// A fresh runner; the seed is fixed so failures reproduce.
        pub fn new(_config: ProptestConfig) -> Self {
            Self::with_seed(0x3141_5926_5358_9793)
        }

        /// A runner with an explicit seed (xoshiro256++ stream).
        pub fn with_seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRunner {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Unbiased uniform draw from `[0, width)`, `width > 0`.
        pub fn below(&mut self, width: u64) -> u64 {
            debug_assert!(width > 0, "empty sample range");
            let limit = u64::MAX - u64::MAX % width;
            loop {
                let v = self.next_u64();
                if v < limit {
                    return v % width;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the suite uses.

    use crate::test_runner::TestRunner;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply draws a value from the runner's RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Output of [`Strategy::boxed`].
    pub struct BoxedStrategy<V> {
        inner: Box<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, runner: &mut TestRunner) -> V {
            self.inner.generate(runner)
        }
    }

    /// Uniform choice among equally weighted alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, runner: &mut TestRunner) -> V {
            let ix = runner.below(self.options.len() as u64) as usize;
            self.options[ix].generate(runner)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _runner: &mut TestRunner) -> V {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + runner.below(width) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let width = (hi as i128 - lo as i128) as u64;
                    if width == u64::MAX {
                        return runner.next_u64() as $t;
                    }
                    (lo as i128 + runner.below(width + 1) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $ix:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$ix.generate(runner),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the suite generates.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value uniformly from the type's whole domain.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    runner.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-import access, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            for case in 0..config.cases {
                let ($($arg,)+) = $crate::strategy::Strategy::generate(
                    &($($strat,)+),
                    &mut runner,
                );
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case instead of panicking
/// directly (mirror of `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property cases (mirror of `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// `assert_ne!` for property cases (mirror of `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies with a common value type (mirror of
/// `proptest::prop_oneof!`; weights are not supported by the shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(v in 10u32..20, w in -4i32..=4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-4..=4).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 5);
        }

        #[test]
        fn map_applies(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn oneof_picks_an_arm(n in prop_oneof![0i32..5, 100i32..105]) {
            prop_assert!((0..5).contains(&n) || (100..105).contains(&n));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_context() {
        // No #[test] attribute on the inner fn: nested items cannot be
        // tests, and the attribute would draw a harness warning.
        proptest! {
            fn always_fails(_v in 0u32..4) {
                prop_assert!(false, "doomed");
            }
        }
        always_fails();
    }
}
